// The Snippet Information List (IList, paper §2): the ranked list of the
// most significant information in a query result, assembled from
//
//   1. the query keywords (user order),
//   2. the names of the entities in the result (self-containment, §2.1),
//   3. the key of the query result (distinguishability, §2.2),
//   4. the dominant features in decreasing dominance score (§2.3).
//
// For the paper's running example the IList is exactly Figure 3:
// Texas, apparel, retailer, clothes, store, Brook Brothers, Houston,
// outwear, man, casual, suit, woman.

#ifndef EXTRACT_SNIPPET_ILIST_H_
#define EXTRACT_SNIPPET_ILIST_H_

#include <string>
#include <vector>

#include "search/search_engine.h"
#include "snippet/dominant_features.h"
#include "snippet/result_key.h"
#include "snippet/return_entity.h"

namespace extract {

/// Which §2 goal an IList item serves.
enum class IListItemKind {
  kKeyword,
  kEntityName,
  kResultKey,
  kDominantFeature,
};

std::string_view IListItemKindToString(IListItemKind k);

/// One ranked item together with the matching specification the Instance
/// Selector uses to locate its instances in the result.
struct IListItem {
  IListItemKind kind = IListItemKind::kKeyword;
  /// Display string (what Figure 3 shows).
  std::string display;

  /// kKeyword: the lower-cased token.
  std::string token;
  /// kEntityName / kResultKey / kDominantFeature.
  LabelId entity_label = kInvalidLabel;
  /// kResultKey / kDominantFeature.
  LabelId attribute_label = kInvalidLabel;
  /// kResultKey / kDominantFeature: the exact attribute value.
  std::string value;
  /// kDominantFeature: DS(f, R).
  double score = 0.0;
};

/// \brief The ordered IList.
class IList {
 public:
  void Add(IListItem item) { items_.push_back(std::move(item)); }

  const std::vector<IListItem>& items() const { return items_; }
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const IListItem& operator[](size_t i) const { return items_[i]; }

  /// "Texas, apparel, retailer, clothes, store, ..." (Figure 3).
  std::string ToString() const;

 private:
  std::vector<IListItem> items_;
};

/// IList construction knobs.
struct IListOptions {
  DominantFeatureOptions features;
};

/// \brief Assembles the IList for one query result.
///
/// Deduplication: an item whose display string equals (case-insensitively)
/// an earlier item's display is skipped — e.g. entity "retailer" duplicates
/// the keyword "retailer" in the running example, and the feature value
/// "Texas" duplicates the keyword "Texas". Entity names are added in
/// ascending lexicographic order (matching Figure 3's "clothes, store").
IList BuildIList(const IndexedDocument& doc, const Query& query,
                 NodeId result_root, const ReturnEntityInfo& return_entity,
                 const ResultKeyInfo& key, const FeatureStatistics& stats,
                 const NodeClassification& classification,
                 const IListOptions& options);

/// BuildIList with an externally supplied feature ranking (used by the
/// batch diversifier, snippet/distinguishability.h, which re-scores
/// features across all results of a query before assembly).
IList BuildIListWithFeatures(const IndexedDocument& doc, const Query& query,
                             NodeId result_root,
                             const ReturnEntityInfo& return_entity,
                             const ResultKeyInfo& key,
                             const std::vector<RankedFeature>& features,
                             const NodeClassification& classification);

}  // namespace extract

#endif  // EXTRACT_SNIPPET_ILIST_H_
