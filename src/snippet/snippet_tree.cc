#include "snippet/snippet_tree.h"

#include <algorithm>

#include "search/result_builder.h"
#include "xml/serializer.h"

namespace extract {

size_t Snippet::covered_count() const {
  return static_cast<size_t>(std::count(covered.begin(), covered.end(), true));
}

Snippet Snippet::Clone() const {
  Snippet copy;
  copy.result_root = result_root;
  copy.nodes = nodes;
  copy.ilist = ilist;
  copy.covered = covered;
  copy.return_entity = return_entity;
  copy.key = key;
  copy.tree = tree ? tree->Clone() : nullptr;
  return copy;
}

std::unique_ptr<XmlNode> MaterializeSelection(const IndexedDocument& doc,
                                              NodeId result_root,
                                              const Selection& selection) {
  return MaterializeInducedTree(doc, result_root, selection.nodes);
}

std::string RenderSnippet(const Snippet& snippet) {
  if (snippet.tree == nullptr) return "(empty snippet)";
  return RenderXmlTree(*snippet.tree);
}

std::string RenderCoverage(const Snippet& snippet) {
  std::string out = "IList: ";
  for (size_t i = 0; i < snippet.ilist.size(); ++i) {
    if (i > 0) out += ", ";
    out += snippet.ilist[i].display;
    out += (i < snippet.covered.size() && snippet.covered[i]) ? "(+)" : "(-)";
  }
  return out;
}

}  // namespace extract
