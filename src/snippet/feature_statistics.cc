#include "snippet/feature_statistics.h"

#include <algorithm>

#include "common/string_util.h"
#include "common/tree_printer.h"

namespace extract {

namespace {

// Nearest entity ancestor of `n` strictly above `n` but within the result
// subtree; kInvalidNode if none.
NodeId NearestEntityAncestorWithin(const IndexedDocument& doc,
                                   const NodeClassification& classification,
                                   NodeId n, NodeId result_root) {
  for (NodeId cur = doc.parent(n);
       cur != kInvalidNode && doc.IsAncestorOrSelf(result_root, cur);
       cur = doc.parent(cur)) {
    if (classification.IsEntity(cur)) return cur;
  }
  return kInvalidNode;
}

}  // namespace

FeatureStatistics FeatureStatistics::Compute(
    const IndexedDocument& doc, const NodeClassification& classification,
    NodeId result_root) {
  return ComputeRange(doc, classification, result_root, result_root,
                      doc.subtree_end(result_root));
}

FeatureStatistics FeatureStatistics::ComputeRange(
    const IndexedDocument& doc, const NodeClassification& classification,
    NodeId result_root, NodeId scan_begin, NodeId scan_end) {
  FeatureStatistics out;
  for (NodeId id = scan_begin; id < scan_end; ++id) {
    if (!doc.is_element(id) || !classification.IsAttribute(id)) continue;
    NodeId text = doc.sole_text_child(id);
    if (text == kInvalidNode) continue;  // empty attribute: no feature value
    NodeId entity =
        NearestEntityAncestorWithin(doc, classification, id, result_root);
    LabelId entity_label =
        entity == kInvalidNode ? doc.label(result_root) : doc.label(entity);
    FeatureType type{entity_label, doc.label(id)};
    FeatureTypeStats& stats = out.types_[type];
    ++stats.total_occurrences;
    ++stats.value_occurrences[doc.text(text)];
  }
  return out;
}

void FeatureStatistics::MergeFrom(const FeatureStatistics& other) {
  for (const auto& [type, stats] : other.types_) {
    FeatureTypeStats& mine = types_[type];
    mine.total_occurrences += stats.total_occurrences;
    for (const auto& [value, count] : stats.value_occurrences) {
      mine.value_occurrences[value] += count;
    }
  }
}

size_t FeatureStatistics::Occurrences(const Feature& f) const {
  auto it = types_.find(f.type);
  if (it == types_.end()) return 0;
  auto vit = it->second.value_occurrences.find(f.value);
  return vit == it->second.value_occurrences.end() ? 0 : vit->second;
}

double FeatureStatistics::DominanceScore(const Feature& f) const {
  auto it = types_.find(f.type);
  if (it == types_.end()) return 0.0;
  auto vit = it->second.value_occurrences.find(f.value);
  if (vit == it->second.value_occurrences.end()) return 0.0;
  const FeatureTypeStats& stats = it->second;
  return static_cast<double>(vit->second) /
         (static_cast<double>(stats.total_occurrences) /
          static_cast<double>(stats.domain_size()));
}

bool FeatureStatistics::IsDominant(const Feature& f) const {
  auto it = types_.find(f.type);
  if (it == types_.end()) return false;
  auto vit = it->second.value_occurrences.find(f.value);
  if (vit == it->second.value_occurrences.end()) return false;
  const FeatureTypeStats& stats = it->second;
  if (stats.domain_size() == 1) return true;  // the paper's exception
  return vit->second * stats.domain_size() > stats.total_occurrences;
}

std::vector<std::pair<Feature, double>> FeatureStatistics::AllFeatures() const {
  std::vector<std::pair<Feature, double>> out;
  for (const auto& [type, stats] : types_) {
    for (const auto& [value, count] : stats.value_occurrences) {
      Feature f{type, value};
      out.emplace_back(f, DominanceScore(f));
    }
  }
  return out;
}

std::string FeatureStatistics::Render(const LabelTable& labels,
                                      size_t min_occurrences) const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"attribute", "value: occurrences"});
  for (const auto& [type, stats] : types_) {
    std::vector<std::pair<std::string, size_t>> values(
        stats.value_occurrences.begin(), stats.value_occurrences.end());
    std::sort(values.begin(), values.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    std::string cell;
    size_t other_count = 0;
    size_t other_total = 0;
    for (const auto& [value, count] : values) {
      if (count < min_occurrences) {
        ++other_count;
        other_total += count;
        continue;
      }
      if (!cell.empty()) cell += "  ";
      cell += value + ": " + std::to_string(count);
    }
    if (other_count > 0) {
      if (!cell.empty()) cell += "  ";
      cell += "other (" + std::to_string(other_count) +
              "): " + std::to_string(other_total);
    }
    rows.push_back({labels.Name(type.attribute_label) + ":", cell});
  }
  return RenderTable(rows);
}

}  // namespace extract
