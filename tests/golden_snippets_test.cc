// Golden-snippet regression tests: the snippets of the example corpora and
// queries are serialized to checked-in golden files and must stay
// byte-identical — a cache bug or a selector change can't silently alter
// what users see.
//
// Each golden is asserted for the plain SnippetService path, for a warmed
// CachingSnippetService, and for slot-order-collected SnippetStreams over
// both (uncached and cached) — so the batch collectors and the streaming
// core they sit on are all pinned to the same bytes.
//
// Regenerate after an intentional output change:
//   EXTRACT_UPDATE_GOLDEN=1 ./build/tests/golden_snippets_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "datagen/movies_dataset.h"
#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"
#include "snippet/snippet_cache.h"
#include "snippet/snippet_service.h"
#include "snippet/snippet_tree.h"
#include "xml/serializer.h"

#ifndef EXTRACT_SOURCE_DIR
#error "EXTRACT_SOURCE_DIR must be defined by the build"
#endif

namespace extract {
namespace {

struct GoldenCase {
  /// Golden file stem and cache-key document id.
  std::string name;
  std::string xml;
  std::string query_text;
  size_t size_bound;
};

std::vector<GoldenCase> GoldenCases() {
  return {
      // The paper's running example (Figures 1-3).
      {"retailer_texas_apparel_retailer", GenerateRetailerXml(),
       "Texas apparel retailer", 10},
      {"retailer_texas_apparel_retailer_bound14", GenerateRetailerXml(),
       "Texas apparel retailer", 14},
      {"stores_store_texas", GenerateStoresXml(), "store texas", 10},
      {"movies_drama_stone", GenerateMoviesXml(), "drama stone", 10},
  };
}

std::string GoldenPath(const std::string& name) {
  return std::string(EXTRACT_SOURCE_DIR) + "/tests/golden/" + name +
         ".golden";
}

/// Full byte-level serialization of one result page: everything a user (or
/// renderer) can observe about each snippet.
std::string SerializeSnippets(const Query& query,
                              const std::vector<Snippet>& snippets) {
  std::ostringstream out;
  out << "query: " << query.ToString() << "\n";
  out << "snippets: " << snippets.size() << "\n";
  for (size_t i = 0; i < snippets.size(); ++i) {
    const Snippet& s = snippets[i];
    out << "=== snippet " << i << "\n";
    out << "root: " << s.result_root << "\n";
    out << "nodes:";
    for (NodeId node : s.nodes) out << ' ' << node;
    out << "\n";
    out << "key: " << (s.key.found() ? s.key.value : "(none)") << "\n";
    out << "return_entity: label=" << s.return_entity.label
        << " evidence=" << static_cast<int>(s.return_entity.evidence)
        << " instances=";
    for (NodeId node : s.return_entity.instances) out << node << ',';
    out << "\n";
    out << "ilist: " << s.ilist.ToString() << "\n";
    out << "coverage: " << RenderCoverage(s) << "\n";
    out << "tree:\n" << RenderSnippet(s);
    out << "xml: " << (s.tree ? WriteXml(*s.tree) : "(no tree)") << "\n";
  }
  return out.str();
}

Result<std::vector<Snippet>> GenerateUncached(const XmlDatabase& db,
                                              const Query& query,
                                              const std::vector<QueryResult>& results,
                                              const SnippetOptions& options) {
  SnippetService service(&db);
  BatchOptions sequential;
  sequential.num_threads = 1;
  return service.GenerateBatch(query, results, options, sequential);
}

TEST(GoldenSnippetsTest, ExampleCorporaMatchGoldenFiles) {
  const bool update = std::getenv("EXTRACT_UPDATE_GOLDEN") != nullptr;
  for (const GoldenCase& c : GoldenCases()) {
    SCOPED_TRACE(c.name);
    auto db = XmlDatabase::Load(c.xml);
    ASSERT_TRUE(db.ok()) << db.status();
    Query query = Query::Parse(c.query_text);
    XSeekEngine engine;
    auto results = engine.Search(*db, query);
    ASSERT_TRUE(results.ok()) << results.status();
    ASSERT_FALSE(results->empty()) << "golden case must have results";

    SnippetOptions options;
    options.size_bound = c.size_bound;
    auto snippets = GenerateUncached(*db, query, *results, options);
    ASSERT_TRUE(snippets.ok()) << snippets.status();
    const std::string serialized = SerializeSnippets(query, *snippets);

    const std::string path = GoldenPath(c.name);
    if (update) {
      std::ofstream out(path, std::ios::binary);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << serialized;
      continue;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " — regenerate with EXTRACT_UPDATE_GOLDEN=1";
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(serialized, golden.str())
        << "snippet output changed; if intentional, regenerate goldens with "
           "EXTRACT_UPDATE_GOLDEN=1";

    // The cached path (cold fill + warm hits) must serialize to the same
    // bytes as the golden file.
    SnippetService service(&*db);
    SnippetCache cache;
    CachingSnippetService caching(&service, &cache, c.name);
    for (int pass = 0; pass < 2; ++pass) {
      auto cached = caching.GenerateBatch(query, *results, options,
                                          BatchOptions{});
      ASSERT_TRUE(cached.ok()) << cached.status();
      EXPECT_EQ(SerializeSnippets(query, *cached), golden.str())
          << (pass == 0 ? "cold" : "warm") << " cached pass diverged";
    }
    EXPECT_EQ(cache.Stats().hits, results->size());
    EXPECT_EQ(cache.Stats().misses, results->size());

    // A slot-order-collected stream — uncached, and cached over the warm
    // cache (every slot a pre-emitted hit) — must also serialize to the
    // golden bytes.
    StreamOptions slot_order;
    slot_order.order = StreamOrder::kSlot;
    {
      SnippetContext ctx(&*db, query);
      ServingSession session =
          service.StreamBatch(ctx, *results, options, slot_order);
      auto streamed = session.stream().Collect();
      ASSERT_TRUE(streamed.ok()) << streamed.status();
      EXPECT_EQ(SerializeSnippets(query, *streamed), golden.str())
          << "uncached stream collection diverged";
    }
    {
      ServingSession session =
          caching.StreamBatch(query, *results, options, slot_order);
      EXPECT_EQ(session.Stats().emitted, results->size())
          << "warm stream must emit every hit at open";
      auto streamed = session.stream().Collect();
      ASSERT_TRUE(streamed.ok()) << streamed.status();
      EXPECT_EQ(SerializeSnippets(query, *streamed), golden.str())
          << "cached stream collection diverged";
    }
  }
}

}  // namespace
}  // namespace extract
