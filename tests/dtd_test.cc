#include "xml/dtd.h"

#include <gtest/gtest.h>

namespace extract {
namespace {

Dtd MustParse(std::string_view subset) {
  auto dtd = ParseDtd(subset, "root");
  EXPECT_TRUE(dtd.ok()) << dtd.status();
  return std::move(*dtd);
}

TEST(DtdParseTest, SimpleStarDecl) {
  Dtd dtd = MustParse("<!ELEMENT retailers (retailer*)>");
  const DtdElementDecl* decl = dtd.FindElement("retailers");
  ASSERT_NE(decl, nullptr);
  EXPECT_EQ(decl->category, DtdElementDecl::Category::kChildren);
  EXPECT_TRUE(dtd.IsStarChild("retailers", "retailer"));
}

TEST(DtdParseTest, SequenceWithModifiers) {
  Dtd dtd = MustParse("<!ELEMENT store (name, state?, city, merchandises+)>");
  EXPECT_FALSE(dtd.IsStarChild("store", "name"));
  EXPECT_FALSE(dtd.IsStarChild("store", "state"));
  EXPECT_TRUE(dtd.IsStarChild("store", "merchandises"));  // + repeats
}

TEST(DtdParseTest, ChoiceGroups) {
  Dtd dtd = MustParse("<!ELEMENT media (book | cd | dvd)*>");
  EXPECT_TRUE(dtd.IsStarChild("media", "book"));
  EXPECT_TRUE(dtd.IsStarChild("media", "cd"));
  EXPECT_TRUE(dtd.IsStarChild("media", "dvd"));
  EXPECT_FALSE(dtd.IsStarChild("media", "tape"));
}

TEST(DtdParseTest, NestedGroups) {
  Dtd dtd = MustParse("<!ELEMENT a ((b, c)*, d, (e | f)?)>");
  EXPECT_TRUE(dtd.IsStarChild("a", "b"));
  EXPECT_TRUE(dtd.IsStarChild("a", "c"));
  EXPECT_FALSE(dtd.IsStarChild("a", "d"));
  EXPECT_FALSE(dtd.IsStarChild("a", "e"));
}

TEST(DtdParseTest, RepeatedNameWithoutStarIsStarred) {
  // <!ELEMENT a (b, b)> allows two b children: b repeats.
  Dtd dtd = MustParse("<!ELEMENT a (b, b)>");
  EXPECT_TRUE(dtd.IsStarChild("a", "b"));
}

TEST(DtdParseTest, PcdataOnly) {
  Dtd dtd = MustParse("<!ELEMENT name (#PCDATA)>");
  const DtdElementDecl* decl = dtd.FindElement("name");
  ASSERT_NE(decl, nullptr);
  EXPECT_EQ(decl->category, DtdElementDecl::Category::kMixed);
  EXPECT_FALSE(dtd.IsStarChild("name", "anything"));
}

TEST(DtdParseTest, MixedContentNamesAreStarred) {
  Dtd dtd = MustParse("<!ELEMENT p (#PCDATA | em | strong)*>");
  EXPECT_TRUE(dtd.IsStarChild("p", "em"));
  EXPECT_TRUE(dtd.IsStarChild("p", "strong"));
  EXPECT_FALSE(dtd.IsStarChild("p", "div"));
}

TEST(DtdParseTest, EmptyAndAny) {
  Dtd dtd = MustParse("<!ELEMENT br EMPTY><!ELEMENT any ANY><!ELEMENT x (#PCDATA)>");
  EXPECT_EQ(dtd.FindElement("br")->category, DtdElementDecl::Category::kEmpty);
  EXPECT_EQ(dtd.FindElement("any")->category, DtdElementDecl::Category::kAny);
  EXPECT_FALSE(dtd.IsStarChild("br", "x"));
  // ANY allows any declared element to repeat.
  EXPECT_TRUE(dtd.IsStarChild("any", "x"));
  EXPECT_FALSE(dtd.IsStarChild("any", "undeclared"));
}

TEST(DtdParseTest, SkipsAttlistEntityNotation) {
  Dtd dtd = MustParse(R"dtd(
    <!ELEMENT a (b*)>
    <!ATTLIST a id ID #REQUIRED>
    <!ENTITY copy "(c)">
    <!NOTATION gif SYSTEM "viewer">
    <!ELEMENT b (#PCDATA)>
  )dtd");
  EXPECT_EQ(dtd.size(), 2u);
  EXPECT_TRUE(dtd.IsStarChild("a", "b"));
}

TEST(DtdParseTest, SkipsComments) {
  Dtd dtd = MustParse("<!-- header --><!ELEMENT a (b*)><!-- footer -->");
  EXPECT_EQ(dtd.size(), 1u);
}

TEST(DtdParseTest, RootNamePropagated) {
  auto dtd = ParseDtd("<!ELEMENT r (x*)>", "r");
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd->root_name(), "r");
}

TEST(DtdParseTest, ElementNamesSorted) {
  Dtd dtd = MustParse("<!ELEMENT z (#PCDATA)><!ELEMENT a (#PCDATA)>");
  EXPECT_EQ(dtd.ElementNames(), (std::vector<std::string>{"a", "z"}));
}

TEST(DtdParseTest, UndeclaredParent) {
  Dtd dtd = MustParse("<!ELEMENT a (b*)>");
  EXPECT_FALSE(dtd.IsStarChild("nope", "b"));
}

// ------------------------------------------------------------- error paths

TEST(DtdErrorTest, MalformedElementDecl) {
  EXPECT_FALSE(ParseDtd("<!ELEMENT a >", "a").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b", "a").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b,|c)>", "a").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT (b)>", "a").ok());
}

TEST(DtdErrorTest, MixedSeparators) {
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b, c | d)>", "a").ok());
}

TEST(DtdErrorTest, GarbageDeclaration) {
  EXPECT_FALSE(ParseDtd("<!WAT x>", "a").ok());
}

TEST(DtdErrorTest, UnterminatedAttlist) {
  EXPECT_FALSE(ParseDtd("<!ATTLIST a id ID #REQUIRED", "a").ok());
}

}  // namespace
}  // namespace extract
