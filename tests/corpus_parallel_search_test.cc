// Sharded SearchAll must be indistinguishable from the sequential loop:
// identical result vectors (documents, roots, bitwise-equal scores) for
// every shard/thread configuration and across repeated runs, and identical
// error reporting when an engine fails in any shard. This suite — also run
// under ThreadSanitizer in CI — is what lets the sharded path be the
// default.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/movies_dataset.h"
#include "datagen/random_xml.h"
#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"
#include "search/corpus.h"

namespace extract {
namespace {

// Demo data sets plus synthetic documents: 8 documents, realistic skew in
// per-document hit counts (several documents produce no hits at all).
XmlCorpus MakeWideCorpus() {
  XmlCorpus corpus;
  EXPECT_TRUE(corpus.AddDocument("retailer", GenerateRetailerXml()).ok());
  EXPECT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
  EXPECT_TRUE(corpus.AddDocument("movies", GenerateMoviesXml()).ok());
  for (int d = 0; d < 5; ++d) {
    RandomXmlOptions options;
    options.levels = 2;
    options.entities_per_parent = 6;
    options.seed = 1000 + d;
    EXPECT_TRUE(corpus
                    .AddDocument("random" + std::to_string(d),
                                 GenerateRandomXml(options).xml)
                    .ok());
  }
  return corpus;
}

void ExpectSamePage(const std::vector<CorpusResult>& expected,
                    const std::vector<CorpusResult>& actual,
                    const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].document, actual[i].document)
        << label << " hit " << i;
    EXPECT_EQ(expected[i].result.root, actual[i].result.root)
        << label << " hit " << i;
    // Bitwise double equality: both paths run the identical per-document
    // ranking computation, so even the last ulp must match.
    EXPECT_EQ(expected[i].score, actual[i].score) << label << " hit " << i;
  }
}

TEST(CorpusParallelSearchTest, ShardedEqualsSequentialAcrossConfigurations) {
  XmlCorpus corpus = MakeWideCorpus();
  XSeekEngine engine;
  const char* queries[] = {"texas", "texas store", "drama", "v1_0 v1_1"};

  CorpusServingOptions sequential;
  sequential.search_threads = 1;

  struct Config {
    size_t threads;
    size_t max_shards;
  };
  const Config configs[] = {{0, 0}, {2, 0}, {4, 0}, {8, 0},
                            {2, 2}, {4, 3}, {3, 8}, {16, 16}};
  for (const char* text : queries) {
    Query query = Query::Parse(text);
    auto expected = corpus.SearchAll(query, engine, RankingOptions{},
                                     sequential);
    ASSERT_TRUE(expected.ok()) << expected.status();
    for (const Config& config : configs) {
      CorpusServingOptions serving;
      serving.search_threads = config.threads;
      serving.max_shards = config.max_shards;
      for (int run = 0; run < 3; ++run) {  // repeated runs: no schedule dep
        auto actual = corpus.SearchAll(query, engine, RankingOptions{},
                                       serving);
        ASSERT_TRUE(actual.ok()) << actual.status();
        ExpectSamePage(*expected, *actual,
                       std::string(text) + " threads=" +
                           std::to_string(config.threads) + " shards=" +
                           std::to_string(config.max_shards) + " run=" +
                           std::to_string(run));
      }
    }
  }
}

TEST(CorpusParallelSearchTest, DefaultSearchAllIsShardedAndUnchanged) {
  XmlCorpus corpus = MakeWideCorpus();
  XSeekEngine engine;
  Query query = Query::Parse("texas");
  CorpusServingOptions sequential;
  sequential.search_threads = 1;
  auto expected =
      corpus.SearchAll(query, engine, RankingOptions{}, sequential);
  ASSERT_TRUE(expected.ok());
  auto via_default = corpus.SearchAll(query, engine);
  ASSERT_TRUE(via_default.ok());
  ExpectSamePage(*expected, *via_default, "default overload");
}

// An engine that fails on chosen documents, to pin the error shape.
class FailingEngine : public SearchEngine {
 public:
  FailingEngine(const XmlCorpus& corpus, std::vector<std::string> fail_docs)
      : inner_() {
    for (const std::string& name : fail_docs) {
      fail_dbs_.push_back(corpus.Find(name));
    }
  }

  Result<std::vector<QueryResult>> Search(const XmlDatabase& db,
                                          const Query& query) const override {
    for (const XmlDatabase* fail : fail_dbs_) {
      if (fail == &db) {
        return Status::Internal("engine exploded on this shard");
      }
    }
    return inner_.Search(db, query);
  }

 private:
  XSeekEngine inner_;
  std::vector<const XmlDatabase*> fail_dbs_;
};

TEST(CorpusParallelSearchTest, ShardFailureReportsSequentialError) {
  XmlCorpus corpus = MakeWideCorpus();
  Query query = Query::Parse("texas");
  CorpusServingOptions sequential;
  sequential.search_threads = 1;

  // Fail a middle document, a first one, and several at once: the reported
  // error must always be the one the sequential loop hits first (lowest
  // document in name order), regardless of which shard finishes first.
  const std::vector<std::vector<std::string>> failure_sets = {
      {"random2"},
      {"movies"},
      {"stores", "random0", "retailer"},
  };
  for (const auto& fail_docs : failure_sets) {
    FailingEngine engine(corpus, fail_docs);
    auto expected = corpus.SearchAll(query, engine, RankingOptions{},
                                     sequential);
    ASSERT_FALSE(expected.ok());
    for (size_t threads : {0, 2, 4, 8}) {
      CorpusServingOptions serving;
      serving.search_threads = threads;
      auto actual =
          corpus.SearchAll(query, engine, RankingOptions{}, serving);
      ASSERT_FALSE(actual.ok());
      EXPECT_EQ(expected.status().code(), actual.status().code());
      EXPECT_EQ(expected.status().message(), actual.status().message());
    }
  }
}

TEST(CorpusParallelSearchTest, EmptyQueryErrorMatchesSequential) {
  XmlCorpus corpus = MakeWideCorpus();
  XSeekEngine engine;
  CorpusServingOptions sequential;
  sequential.search_threads = 1;
  auto expected = corpus.SearchAll(Query{}, engine, RankingOptions{},
                                   sequential);
  ASSERT_FALSE(expected.ok());
  CorpusServingOptions sharded;
  sharded.search_threads = 4;
  auto actual = corpus.SearchAll(Query{}, engine, RankingOptions{}, sharded);
  ASSERT_FALSE(actual.ok());
  EXPECT_EQ(expected.status().code(), actual.status().code());
  EXPECT_EQ(expected.status().message(), actual.status().message());
}

TEST(CorpusParallelSearchTest, SearchRecordsStageStats) {
  XmlCorpus corpus = MakeWideCorpus();
  XSeekEngine engine;
  ASSERT_TRUE(corpus.SearchAll(Query::Parse("texas"), engine).ok());
  ASSERT_TRUE(corpus.SearchAll(Query::Parse("drama"), engine).ok());
  std::vector<StageStat> stats = corpus.StageStatsSnapshot();
  ASSERT_FALSE(stats.empty());
  EXPECT_EQ(stats[0].name, "search");
  EXPECT_EQ(stats[0].calls, 2u);
  EXPECT_GT(stats[0].total_ns, 0u);
  EXPECT_GE(stats[0].total_ns, stats[0].max_ns);
  corpus.ResetStageStats();
  EXPECT_TRUE(corpus.StageStatsSnapshot().empty());
}

}  // namespace
}  // namespace extract
