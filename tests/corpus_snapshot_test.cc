// Corpus snapshot tests: the mmap-able whole-corpus store (ROADMAP
// direction 3). Pins the format contract (precise statuses for every
// corruption/truncation/version-skew shape), byte-equivalence of
// snapshot-backed serving against the in-memory corpus — search pages,
// snippets, and the HTTP wire — lazy fault-in semantics (counters, retry,
// MayMatch pruning that never touches payloads), the two-layer corpus
// composition (overlay shadowing, hides, instance scoping), and churn
// under concurrent mutation (exercised by the TSan CI job).

#include "search/corpus_snapshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "datagen/movies_dataset.h"
#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"
#include "http/http_server.h"
#include "http/query_endpoints.h"
#include "http_test_util.h"
#include "search/corpus.h"
#include "snippet/snippet_tree.h"

namespace extract {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Writes the three demo datasets (names pre-sorted, so directory order
/// matches write order) and returns the snapshot path.
std::string WriteDemoSnapshot(const std::string& name) {
  const std::string path = TempPath(name);
  auto writer = CorpusSnapshotWriter::Create(path);
  EXPECT_TRUE(writer.ok()) << writer.status();
  EXPECT_TRUE(writer->Add("movies", *XmlDatabase::Load(GenerateMoviesXml()))
                  .ok());
  EXPECT_TRUE(
      writer->Add("retailer", *XmlDatabase::Load(GenerateRetailerXml())).ok());
  EXPECT_TRUE(writer->Add("stores", *XmlDatabase::Load(GenerateStoresXml()))
                  .ok());
  EXPECT_TRUE(writer->Finish().ok());
  return path;
}

// ------------------------------------------------------------ round trip

TEST(CorpusSnapshotTest, WriterRoundTripFaultsInEquivalentDocuments) {
  const std::string path = WriteDemoSnapshot("corpus_roundtrip.xcsn");
  auto snapshot = CorpusSnapshot::Open(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  CorpusSnapshot& snap = **snapshot;

  ASSERT_EQ(snap.doc_count(), 3u);
  EXPECT_EQ(snap.name(0), "movies");  // sorted by name
  EXPECT_EQ(snap.name(1), "retailer");
  EXPECT_EQ(snap.name(2), "stores");
  EXPECT_EQ(snap.FindIndex("retailer"), 1);
  EXPECT_EQ(snap.FindIndex("zzz"), -1);

  // Nothing is resident until touched.
  CorpusSnapshotStats stats = snap.Stats();
  EXPECT_EQ(stats.documents, 3u);
  EXPECT_EQ(stats.resident, 0u);
  EXPECT_EQ(stats.faults, 0u);
  EXPECT_GT(stats.file_bytes, 0u);
  EXPECT_EQ(snap.ResidentOrNull(1), nullptr);

  auto doc = snap.Fault(1);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->name, "retailer");
  EXPECT_EQ(snap.ResidentOrNull(1), *doc);
  EXPECT_EQ(snap.Fault(1).value(), *doc);  // second touch: same pointer

  stats = snap.Stats();
  EXPECT_EQ(stats.resident, 1u);
  EXPECT_EQ(stats.faults, 1u);
  EXPECT_EQ(stats.fault_failures, 0u);

  // The decoded document matches a fresh parse node for node.
  auto fresh = XmlDatabase::Load(GenerateRetailerXml());
  ASSERT_TRUE(fresh.ok());
  const IndexedDocument& a = fresh->index();
  const IndexedDocument& b = (*doc)->db->index();
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (NodeId n = 0; n < static_cast<NodeId>(a.num_nodes()); ++n) {
    ASSERT_EQ(a.parent(n), b.parent(n)) << "node " << n;
    ASSERT_EQ(a.kind(n), b.kind(n)) << "node " << n;
    if (a.is_element(n)) {
      ASSERT_EQ(a.label_name(n), b.label_name(n)) << "node " << n;
    } else {
      ASSERT_EQ(a.text(n), b.text(n)) << "node " << n;
    }
  }
  EXPECT_EQ(fresh->inverted().vocabulary_size(),
            (*doc)->db->inverted().vocabulary_size());
  EXPECT_EQ(fresh->inverted().total_postings(),
            (*doc)->db->inverted().total_postings());
  std::remove(path.c_str());
}

TEST(CorpusSnapshotTest, WriterRejectsDuplicateNames) {
  const std::string path = TempPath("corpus_dup.xcsn");
  auto writer = CorpusSnapshotWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  auto db = XmlDatabase::Load("<a>x</a>");
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(writer->Add("doc", *db).ok());
  EXPECT_EQ(writer->Add("doc", *db).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(writer->Finish().ok());
  std::remove(path.c_str());
}

// ------------------------------------------------- corruption / skew

TEST(CorpusSnapshotTest, OpenRejectsCorruptionWithPreciseStatuses) {
  const std::string path = WriteDemoSnapshot("corpus_corrupt.xcsn");
  const std::string good = ReadFile(path);
  ASSERT_GT(good.size(), 64u);
  const std::string mutated = TempPath("corpus_corrupt_mut.xcsn");

  auto open_mutated = [&](const std::string& bytes) {
    WriteFile(mutated, bytes);
    return CorpusSnapshot::Open(mutated).status();
  };

  {  // bad magic
    std::string bytes = good;
    bytes[0] = 'Y';
    Status status = open_mutated(bytes);
    EXPECT_EQ(status.code(), StatusCode::kParseError);
    EXPECT_NE(status.message().find("bad magic"), std::string::npos) << status;
  }
  {  // version skew
    std::string bytes = good;
    bytes[4] = 99;
    Status status = open_mutated(bytes);
    EXPECT_EQ(status.code(), StatusCode::kParseError);
    EXPECT_NE(status.message().find("unsupported version"), std::string::npos)
        << status;
  }
  {  // header corruption
    std::string bytes = good;
    bytes[16] ^= 0x5A;  // inside the checksummed header region
    Status status = open_mutated(bytes);
    EXPECT_EQ(status.code(), StatusCode::kParseError);
    EXPECT_NE(status.message().find("checksum mismatch"), std::string::npos)
        << status;
  }
  {  // directory corruption (directory sits at EOF)
    std::string bytes = good;
    bytes[bytes.size() - 1] ^= 0x5A;
    Status status = open_mutated(bytes);
    EXPECT_EQ(status.code(), StatusCode::kParseError);
    EXPECT_NE(status.message().find("directory checksum mismatch"),
              std::string::npos)
        << status;
  }
  {  // truncation at every interesting boundary
    for (size_t keep : {size_t{0}, size_t{10}, size_t{63}, size_t{64},
                        good.size() / 2, good.size() - 1}) {
      Status status = open_mutated(good.substr(0, keep));
      EXPECT_EQ(status.code(), StatusCode::kParseError) << "kept " << keep;
    }
    Status status = open_mutated(good.substr(0, good.size() - 8));
    EXPECT_NE(status.message().find("truncated"), std::string::npos) << status;
  }
  {  // trailing garbage
    Status status = open_mutated(good + std::string(8, '\0'));
    EXPECT_NE(status.message().find("trailing"), std::string::npos) << status;
  }
  // The pristine file still opens — no mutation above was destructive.
  EXPECT_TRUE(CorpusSnapshot::Open(path).ok());
  EXPECT_EQ(CorpusSnapshot::Open(TempPath("no_such.xcsn")).status().code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
  std::remove(mutated.c_str());
}

TEST(CorpusSnapshotTest, PayloadCorruptionSurfacesAtFaultInAndIsSticky) {
  const std::string path = WriteDemoSnapshot("corpus_payload.xcsn");
  std::string bytes = ReadFile(path);
  // Payload blobs start right after the 64-byte header; names were added in
  // sorted order, so the first blob is document 0 ("movies"). Flip a byte
  // deep inside it (past the section TOC, so framing stays plausible).
  bytes[64 + 128] ^= 0x5A;
  WriteFile(path, bytes);

  auto snapshot = CorpusSnapshot::Open(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();  // open never reads payloads
  CorpusSnapshot& snap = **snapshot;

  Status fault = snap.Fault(0).status();
  EXPECT_EQ(fault.code(), StatusCode::kParseError);
  EXPECT_NE(fault.message().find("payload checksum mismatch"),
            std::string::npos)
      << fault;
  EXPECT_NE(fault.message().find("movies"), std::string::npos) << fault;
  // Deterministic on retry, nothing retained, failure counted.
  EXPECT_FALSE(snap.Fault(0).ok());
  EXPECT_EQ(snap.ResidentOrNull(0), nullptr);
  EXPECT_EQ(snap.Stats().fault_failures, 2u);
  EXPECT_EQ(snap.Stats().resident, 0u);
  // The other documents are untouched by the corruption.
  EXPECT_TRUE(snap.Fault(1).ok());
  EXPECT_TRUE(snap.Fault(2).ok());
  std::remove(path.c_str());
}

// ------------------------------------------------------------- MayMatch

TEST(CorpusSnapshotTest, MayMatchPrunesWithoutFaultingIn) {
  const std::string path = WriteDemoSnapshot("corpus_maymatch.xcsn");
  auto snapshot = CorpusSnapshot::Open(path);
  ASSERT_TRUE(snapshot.ok());
  CorpusSnapshot& snap = **snapshot;

  {
    Query query = Query::Parse("texas");
    CorpusSnapshot::QueryFilter filter(query);
    EXPECT_TRUE(snap.MayMatch(2, filter));  // stores mentions Texas
  }
  {
    Query query = Query::Parse("xyzzyplugh");
    CorpusSnapshot::QueryFilter filter(query);
    for (size_t i = 0; i < snap.doc_count(); ++i) {
      EXPECT_FALSE(snap.MayMatch(i, filter)) << "doc " << i;
    }
  }
  {
    Query query = Query::Parse("");  // no keywords: conservatively true
    CorpusSnapshot::QueryFilter filter(query);
    EXPECT_TRUE(snap.MayMatch(0, filter));
  }
  // MayMatch reads only the mapped token arena — nothing became resident.
  EXPECT_EQ(snap.Stats().resident, 0u);

  // Corpus-level: a search that cannot match anything completes without a
  // single fault-in. That is the million-document win — cold queries pay
  // O(matching docs), not O(corpus).
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AttachSnapshot(*snapshot).ok());
  XSeekEngine engine;
  auto hits = corpus.SearchAll(Query::Parse("xyzzyplugh"), engine);
  ASSERT_TRUE(hits.ok()) << hits.status();
  EXPECT_TRUE(hits->empty());
  EXPECT_EQ(corpus.SnapshotStatsSnapshot()->resident, 0u);
  std::remove(path.c_str());
}

// ----------------------------------------- equivalence vs in-memory corpus

class SnapshotEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(memory_.AddDocument("movies", GenerateMoviesXml()).ok());
    ASSERT_TRUE(memory_.AddDocument("retailer", GenerateRetailerXml()).ok());
    ASSERT_TRUE(memory_.AddDocument("stores", GenerateStoresXml()).ok());

    path_ = TempPath("corpus_equiv.xcsn");
    ASSERT_TRUE(memory_.SaveSnapshot(path_).ok());
    auto snapshot = CorpusSnapshot::Open(path_);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status();
    ASSERT_TRUE(snapshot_backed_.AttachSnapshot(*snapshot).ok());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  XmlCorpus memory_;
  XmlCorpus snapshot_backed_;
  XSeekEngine engine_;
  std::string path_;
};

TEST_F(SnapshotEquivalenceTest, SearchPagesAndSnippetsAreByteIdentical) {
  for (const char* text :
       {"texas", "texas apparel retailer", "movie", "science fiction",
        "store manager", "xyzzyplugh", ""}) {
    const Query query = Query::Parse(text);
    auto a = memory_.SearchAll(query, engine_);
    auto b = snapshot_backed_.SearchAll(query, engine_);
    ASSERT_EQ(a.ok(), b.ok()) << text;
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), b.status().code()) << text;
      continue;
    }
    ASSERT_EQ(a->size(), b->size()) << text;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].document, (*b)[i].document) << text;
      EXPECT_EQ((*a)[i].result.root, (*b)[i].result.root) << text;
      EXPECT_EQ((*a)[i].score, (*b)[i].score) << text;
    }
    if (a->empty()) continue;

    auto snip_a = memory_.GenerateSnippets(query, *a, SnippetOptions{});
    auto snip_b = snapshot_backed_.GenerateSnippets(query, *b,
                                                    SnippetOptions{});
    ASSERT_TRUE(snip_a.ok()) << snip_a.status();
    ASSERT_TRUE(snip_b.ok()) << snip_b.status();
    ASSERT_EQ(snip_a->size(), snip_b->size());
    for (size_t i = 0; i < snip_a->size(); ++i) {
      EXPECT_EQ(RenderSnippet((*snip_a)[i]), RenderSnippet((*snip_b)[i]))
          << text << " slot " << i;
      EXPECT_EQ((*snip_a)[i].nodes, (*snip_b)[i].nodes) << text;
      EXPECT_EQ((*snip_a)[i].covered, (*snip_b)[i].covered) << text;
    }
  }
}

TEST_F(SnapshotEquivalenceTest, TopKMatchesAcrossBackends) {
  const Query query = Query::Parse("texas");
  for (size_t k : {size_t{1}, size_t{3}, size_t{10}}) {
    auto a = memory_.SearchTopK(query, engine_, RankingOptions{},
                                CorpusServingOptions{}, k);
    auto b = snapshot_backed_.SearchTopK(query, engine_, RankingOptions{},
                                         CorpusServingOptions{}, k);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    ASSERT_EQ(a->size(), b->size()) << "k=" << k;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].document, (*b)[i].document) << "k=" << k;
      EXPECT_EQ((*a)[i].score, (*b)[i].score) << "k=" << k;
    }
  }
}

TEST_F(SnapshotEquivalenceTest, FindAndNamesMatch) {
  EXPECT_EQ(memory_.DocumentNames(), snapshot_backed_.DocumentNames());
  EXPECT_EQ(memory_.size(), snapshot_backed_.size());
  ASSERT_NE(snapshot_backed_.Find("stores"), nullptr);
  EXPECT_EQ(snapshot_backed_.Find("stores")->index().num_nodes(),
            memory_.Find("stores")->index().num_nodes());
  EXPECT_EQ(snapshot_backed_.Find("absent"), nullptr);
}

/// Zeroes the legitimately backend-dependent counters of a response body:
/// wall-clock timings, and the search work counters MayMatch pruning is
/// SUPPOSED to shrink (fewer producers opened, fewer pull rounds). Result
/// content — documents, scores, keys, snippets — is never scrubbed.
std::string ScrubWorkCounters(std::string body) {
  for (const std::string field : {"_ns\":", "producers\":", "pull_rounds\":"}) {
    for (size_t at = body.find(field); at != std::string::npos;
         at = body.find(field, at + 1)) {
      const size_t digits = at + field.size();
      size_t end = digits;
      while (end < body.size() && body[end] >= '0' && body[end] <= '9') ++end;
      body.replace(digits, end - digits, "0");
    }
  }
  return body;
}

TEST_F(SnapshotEquivalenceTest, HttpWireIsByteIdentical) {
  memory_.EnableSnippetCache();
  snapshot_backed_.EnableSnippetCache();
  HttpServer server_a{HttpServerOptions{}};
  HttpServer server_b{HttpServerOptions{}};
  QueryService service_a(&memory_, &engine_, QueryServiceOptions{});
  QueryService service_b(&snapshot_backed_, &engine_, QueryServiceOptions{});
  service_a.Register(&server_a);
  service_b.Register(&server_b);
  ASSERT_TRUE(server_a.Start().ok());
  ASSERT_TRUE(server_b.Start().ok());

  const std::vector<std::string> targets = {
      "/query?q=texas", "/query?q=" + testing::UrlEncode("movie actor"),
      "/query?q=texas&mode=sse", "/query?q=xyzzyplugh", "/query?q="};
  for (const std::string& target : targets) {
    testing::HttpResponse a = testing::Get(server_a.port(), target);
    testing::HttpResponse b = testing::Get(server_b.port(), target);
    ASSERT_TRUE(a.valid && b.valid) << target;
    EXPECT_EQ(a.status, b.status) << target;
    // The wire is backend-blind: identical except timing/work counters.
    EXPECT_EQ(ScrubWorkCounters(a.body), ScrubWorkCounters(b.body)) << target;
  }
  server_a.Stop();
  server_b.Stop();
}

TEST_F(SnapshotEquivalenceTest, StatsReportsSnapshotCounters) {
  // Touch one document, then check /stats surfaces the fault-in counters.
  ASSERT_NE(snapshot_backed_.Find("stores"), nullptr);
  auto stats = snapshot_backed_.SnapshotStatsSnapshot();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->documents, 3u);
  EXPECT_GE(stats->resident, 1u);
  EXPECT_EQ(stats->path, path_);
  EXPECT_FALSE(memory_.SnapshotStatsSnapshot().has_value());

  HttpServer server{HttpServerOptions{}};
  QueryService service(&snapshot_backed_, &engine_, QueryServiceOptions{});
  service.Register(&server);
  ASSERT_TRUE(server.Start().ok());
  testing::HttpResponse response = testing::Get(server.port(), "/stats");
  ASSERT_TRUE(response.valid);
  EXPECT_NE(response.body.find("\"snapshot\""), std::string::npos);
  EXPECT_NE(response.body.find("\"resident\""), std::string::npos);
  EXPECT_NE(response.body.find("\"faults\""), std::string::npos);
  server.Stop();
}

// ------------------------------------------------- two-layer composition

TEST(CorpusSnapshotLayerTest, OverlayShadowingAndHides) {
  const std::string path = WriteDemoSnapshot("corpus_layers.xcsn");
  auto snapshot = CorpusSnapshot::Open(path);
  ASSERT_TRUE(snapshot.ok());

  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("overlay", "<a><b>unique</b></a>").ok());
  ASSERT_TRUE(corpus.AttachSnapshot(*snapshot).ok());
  EXPECT_EQ(corpus.size(), 4u);

  // Snapshot names are taken: AddDocument must refuse, not shadow.
  EXPECT_EQ(corpus.AddDocument("stores", "<x/>").code(),
            StatusCode::kAlreadyExists);

  // Removing a snapshot document hides it (the mapping is immutable).
  ASSERT_TRUE(corpus.RemoveDocument("stores").ok());
  EXPECT_EQ(corpus.size(), 3u);
  EXPECT_EQ(corpus.Find("stores"), nullptr);
  EXPECT_EQ(corpus.RemoveDocument("stores").code(), StatusCode::kNotFound);

  // A hidden name is free again — the overlay now shadows the snapshot.
  ASSERT_TRUE(corpus.AddDocument("stores", "<shadow>texas</shadow>").ok());
  EXPECT_EQ(corpus.size(), 4u);
  ASSERT_NE(corpus.Find("stores"), nullptr);
  EXPECT_EQ(corpus.Find("stores")->index().num_nodes(), 2u);

  // Attaching over a colliding overlay name is refused atomically.
  auto again = CorpusSnapshot::Open(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(corpus.AttachSnapshot(*again).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(corpus.AttachSnapshot(nullptr).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CorpusSnapshotLayerTest, SaveSnapshotRoundTripsTheVisibleSet) {
  const std::string first = TempPath("corpus_resave_a.xcsn");
  const std::string second = TempPath("corpus_resave_b.xcsn");
  {
    XmlCorpus corpus;
    ASSERT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
    ASSERT_TRUE(corpus.SaveSnapshot(first).ok());
  }
  XmlCorpus corpus;
  auto snapshot = CorpusSnapshot::Open(first);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(corpus.AttachSnapshot(*snapshot).ok());
  ASSERT_TRUE(corpus.AddDocument("extra", "<a><b>two</b></a>").ok());
  // Save again: the snapshot layer + overlay flatten into one image.
  ASSERT_TRUE(corpus.SaveSnapshot(second).ok());

  auto reopened = CorpusSnapshot::Open(second);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->doc_count(), 2u);
  EXPECT_EQ((*reopened)->name(0), "extra");
  EXPECT_EQ((*reopened)->name(1), "stores");
  std::remove(first.c_str());
  std::remove(second.c_str());
}

// ------------------------------------------------------------------ churn

// Readers search and fault in lazily while a writer hides snapshot
// documents and churns overlay documents. Epoch pins must keep every
// observed view coherent; TSan (CI) verifies the synchronization.
TEST(CorpusSnapshotChurnTest, ConcurrentSearchSurvivesMutation) {
  const std::string path = WriteDemoSnapshot("corpus_churn.xcsn");
  auto snapshot = CorpusSnapshot::Open(path);
  ASSERT_TRUE(snapshot.ok());

  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AttachSnapshot(*snapshot).ok());
  XSeekEngine engine;

  std::atomic<bool> stop{false};
  std::atomic<size_t> pages{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&corpus, &engine, &stop, &pages, t] {
      const Query query =
          Query::Parse(t % 2 == 0 ? "texas" : "movie");
      while (!stop.load(std::memory_order_relaxed)) {
        auto hits = corpus.SearchAll(query, engine);
        ASSERT_TRUE(hits.ok()) << hits.status();
        if (!hits->empty()) {
          auto snippets =
              corpus.GenerateSnippets(query, *hits, SnippetOptions{});
          ASSERT_TRUE(snippets.ok()) << snippets.status();
        }
        pages.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(
        corpus.AddDocument("churn", "<a><b>texas churn</b></a>").ok());
    ASSERT_TRUE(corpus.RemoveDocument("churn").ok());
    if (round == 10) {
      ASSERT_TRUE(corpus.RemoveDocument("movies").ok());  // hide snapshot doc
    }
  }
  while (pages.load(std::memory_order_relaxed) < 30) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(corpus.size(), 2u);  // movies hidden, churn removed
  EXPECT_GE(corpus.SnapshotStatsSnapshot()->resident, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace extract
