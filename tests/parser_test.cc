#include "xml/parser.h"

#include <gtest/gtest.h>

namespace extract {
namespace {

TEST(ParserTest, MinimalDocument) {
  auto doc = ParseXml("<a/>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_NE((*doc)->root(), nullptr);
  EXPECT_EQ((*doc)->root()->name(), "a");
  EXPECT_TRUE((*doc)->root()->children().empty());
}

TEST(ParserTest, NestedElementsAndText) {
  auto doc = ParseXml("<store><name>Levis</name><city>Houston</city></store>");
  ASSERT_TRUE(doc.ok());
  XmlNode* root = (*doc)->root();
  ASSERT_EQ(root->children().size(), 2u);
  EXPECT_EQ(root->children()[0]->name(), "name");
  EXPECT_EQ(root->children()[0]->InnerText(), "Levis");
  EXPECT_EQ(root->children()[1]->InnerText(), "Houston");
}

TEST(ParserTest, WhitespaceTextDroppedByDefault) {
  auto doc = ParseXml("<a>\n  <b>x</b>\n</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->root()->children().size(), 1u);
}

TEST(ParserTest, WhitespaceTextKeptOnRequest) {
  XmlParseOptions options;
  options.keep_whitespace_text = true;
  auto doc = ParseXml("<a>\n  <b>x</b>\n</a>", options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->root()->children().size(), 3u);
}

TEST(ParserTest, CommentsDroppedByDefaultKeptOnRequest) {
  auto doc = ParseXml("<a><!--c--><b/></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->root()->children().size(), 1u);

  XmlParseOptions options;
  options.keep_comments = true;
  auto doc2 = ParseXml("<a><!--c--><b/></a>", options);
  ASSERT_TRUE(doc2.ok());
  ASSERT_EQ((*doc2)->root()->children().size(), 2u);
  EXPECT_EQ((*doc2)->root()->children()[0]->kind(), XmlNodeKind::kComment);
}

TEST(ParserTest, AdjacentTextMergesAroundElidedComment) {
  auto doc = ParseXml("<a>one<!--c-->two</a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ((*doc)->root()->children().size(), 1u);
  EXPECT_EQ((*doc)->root()->InnerText(), "onetwo");
}

TEST(ParserTest, AttributesPreserved) {
  auto doc = ParseXml(R"(<a x="1" y="two"/>)");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ((*doc)->root()->attributes().size(), 2u);
  EXPECT_EQ(*(*doc)->root()->FindAttribute("x"), "1");
  EXPECT_EQ(*(*doc)->root()->FindAttribute("y"), "two");
  EXPECT_EQ((*doc)->root()->FindAttribute("z"), nullptr);
}

TEST(ParserTest, CDataBecomesNode) {
  auto doc = ParseXml("<a><![CDATA[<not-xml>]]></a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ((*doc)->root()->children().size(), 1u);
  EXPECT_EQ((*doc)->root()->children()[0]->kind(), XmlNodeKind::kCData);
  EXPECT_EQ((*doc)->root()->InnerText(), "<not-xml>");
}

TEST(ParserTest, XmlDeclarationAccepted) {
  auto doc = ParseXml("<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->root()->name(), "a");
}

TEST(ParserTest, DoctypeParsedIntoDtd) {
  auto doc = ParseXml("<!DOCTYPE db [<!ELEMENT db (item*)>]><db/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE((*doc)->has_dtd());
  EXPECT_EQ((*doc)->dtd().root_name(), "db");
  EXPECT_NE((*doc)->dtd().FindElement("db"), nullptr);
}

TEST(ParserTest, DoctypeSkippedWhenDisabled) {
  XmlParseOptions options;
  options.parse_dtd = false;
  auto doc = ParseXml("<!DOCTYPE db [<!ELEMENT db (item*)>]><db/>", options);
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE((*doc)->has_dtd());
}

TEST(ParserTest, DeeplyNested) {
  std::string xml;
  const int depth = 200;
  for (int i = 0; i < depth; ++i) xml += "<n>";
  xml += "x";
  for (int i = 0; i < depth; ++i) xml += "</n>";
  auto doc = ParseXml(xml);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->root()->CountNodes(), static_cast<size_t>(depth + 1));
}

// ------------------------------------------------------------- error paths

TEST(ParserErrorTest, EmptyInput) {
  EXPECT_EQ(ParseXml("").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseXml("   ").status().code(), StatusCode::kParseError);
}

TEST(ParserErrorTest, UnclosedRoot) {
  EXPECT_EQ(ParseXml("<a><b></b>").status().code(), StatusCode::kParseError);
}

TEST(ParserErrorTest, MismatchedTags) {
  EXPECT_EQ(ParseXml("<a><b></a></b>").status().code(),
            StatusCode::kParseError);
}

TEST(ParserErrorTest, StrayClosingTag) {
  EXPECT_EQ(ParseXml("</a>").status().code(), StatusCode::kParseError);
}

TEST(ParserErrorTest, MultipleRoots) {
  EXPECT_EQ(ParseXml("<a/><b/>").status().code(), StatusCode::kParseError);
}

TEST(ParserErrorTest, TextOutsideRoot) {
  EXPECT_EQ(ParseXml("hello<a/>").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseXml("<a/>world").status().code(), StatusCode::kParseError);
}

TEST(ParserErrorTest, DoctypeAfterRoot) {
  EXPECT_EQ(ParseXml("<a/><!DOCTYPE a>").status().code(),
            StatusCode::kParseError);
}

TEST(ParserErrorTest, TwoDoctypes) {
  EXPECT_EQ(ParseXml("<!DOCTYPE a><!DOCTYPE a><a/>").status().code(),
            StatusCode::kParseError);
}

// -------------------------------------------------------------- fragments

TEST(FragmentTest, ParsesSingleElement) {
  auto frag = ParseXmlFragment("<store><name>Levis</name></store>");
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ((*frag)->name(), "store");
  EXPECT_EQ((*frag)->InnerText(), "Levis");
}

TEST(FragmentTest, RejectsDoctype) {
  EXPECT_FALSE(ParseXmlFragment("<!DOCTYPE a><a/>").ok());
}

}  // namespace
}  // namespace extract
