#include "snippet/ilist.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "datagen/retailer_dataset.h"
#include "snippet/feature_statistics.h"

namespace extract {
namespace {

struct Ctx {
  XmlDatabase db;
  Query query;
  NodeId root = kInvalidNode;
  IList ilist;
};

Ctx BuildFor(std::string xml, const std::string& query_text,
             IListOptions options = {}) {
  auto db = XmlDatabase::Load(std::move(xml));
  EXPECT_TRUE(db.ok()) << db.status();
  Query query = Query::Parse(query_text);
  XSeekEngine engine;
  auto results = engine.Search(*db, query);
  EXPECT_TRUE(results.ok()) << results.status();
  EXPECT_FALSE(results->empty());
  NodeId root = results->front().root;
  FeatureStatistics stats =
      FeatureStatistics::Compute(db->index(), db->classification(), root);
  ReturnEntityInfo entity =
      IdentifyReturnEntity(db->index(), db->classification(), query, root);
  ResultKeyInfo key = IdentifyResultKey(db->index(), db->classification(),
                                        db->keys(), entity, root);
  IList ilist = BuildIList(db->index(), query, root, entity, key, stats,
                           db->classification(), options);
  return Ctx{std::move(*db), std::move(query), root, std::move(ilist)};
}

TEST(IListGoldenTest, PaperFigure3Exact) {
  // Figure 3, verbatim: "Texas, apparel, retailer, clothes, store,
  // Brook Brothers, Houston, outwear, man, casual, suit, woman".
  Ctx ctx = BuildFor(GenerateRetailerXml(), "Texas, apparel, retailer");
  EXPECT_EQ(ctx.ilist.ToString(),
            "Texas, apparel, retailer, clothes, store, Brook Brothers, "
            "Houston, outwear, man, casual, suit, woman");
}

TEST(IListGoldenTest, PaperFigure3Kinds) {
  Ctx ctx = BuildFor(GenerateRetailerXml(), "Texas, apparel, retailer");
  const auto& items = ctx.ilist.items();
  ASSERT_EQ(items.size(), 12u);
  EXPECT_EQ(items[0].kind, IListItemKind::kKeyword);
  EXPECT_EQ(items[2].kind, IListItemKind::kKeyword);
  EXPECT_EQ(items[3].kind, IListItemKind::kEntityName);  // clothes
  EXPECT_EQ(items[4].kind, IListItemKind::kEntityName);  // store
  EXPECT_EQ(items[5].kind, IListItemKind::kResultKey);   // Brook Brothers
  for (size_t i = 6; i < 12; ++i) {
    EXPECT_EQ(items[i].kind, IListItemKind::kDominantFeature);
  }
  // Feature scores are decreasing.
  for (size_t i = 7; i < 12; ++i) {
    EXPECT_LE(items[i].score, items[i - 1].score);
  }
}

TEST(IListTest, KeywordsKeepUserOrderAndCase) {
  Ctx ctx = BuildFor(GenerateRetailerXml(), "Apparel TEXAS retailer");
  const auto& items = ctx.ilist.items();
  EXPECT_EQ(items[0].display, "Apparel");
  EXPECT_EQ(items[1].display, "TEXAS");
  EXPECT_EQ(items[0].token, "apparel");
  EXPECT_EQ(items[1].token, "texas");
}

TEST(IListTest, EntityNameDuplicatingKeywordSkipped) {
  // "retailer" is both a keyword and an entity name: appears once.
  Ctx ctx = BuildFor(GenerateRetailerXml(), "Texas apparel retailer");
  size_t count = 0;
  for (const auto& item : ctx.ilist.items()) {
    if (item.display == "retailer" || item.display == "Retailer") ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(IListTest, FeatureDuplicatingKeywordSkipped) {
  // Feature (store, state, Texas) is trivially dominant but duplicates the
  // keyword "Texas": it must not appear twice.
  Ctx ctx = BuildFor(GenerateRetailerXml(), "Texas apparel retailer");
  size_t count = 0;
  for (const auto& item : ctx.ilist.items()) {
    if (ToLowerCopy(item.display) == "texas") ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(IListTest, MaxFeaturesOptionLimitsTail) {
  IListOptions options;
  options.features.max_features = 2;
  Ctx ctx = BuildFor(GenerateRetailerXml(), "Texas apparel retailer", options);
  // 3 keywords + 2 entities + key + 2 features = 8.
  EXPECT_EQ(ctx.ilist.size(), 8u);
  EXPECT_EQ(ctx.ilist[6].display, "Houston");
  EXPECT_EQ(ctx.ilist[7].display, "outwear");
}

TEST(IListTest, NoKeyWhenNoEntity) {
  Ctx ctx = BuildFor("<a><b>hello world</b></a>", "hello");
  for (const auto& item : ctx.ilist.items()) {
    EXPECT_NE(item.kind, IListItemKind::kResultKey);
    EXPECT_NE(item.kind, IListItemKind::kEntityName);
  }
  // The keyword, plus the trivially dominant (a, b, "hello world") feature
  // (sole value of its type, D == 1).
  ASSERT_EQ(ctx.ilist.size(), 2u);
  EXPECT_EQ(ctx.ilist[0].kind, IListItemKind::kKeyword);
  EXPECT_EQ(ctx.ilist[1].kind, IListItemKind::kDominantFeature);
  EXPECT_EQ(ctx.ilist[1].display, "hello world");
}

TEST(IListTest, ItemKindNames) {
  EXPECT_EQ(IListItemKindToString(IListItemKind::kKeyword), "keyword");
  EXPECT_EQ(IListItemKindToString(IListItemKind::kEntityName), "entity");
  EXPECT_EQ(IListItemKindToString(IListItemKind::kResultKey), "key");
  EXPECT_EQ(IListItemKindToString(IListItemKind::kDominantFeature), "feature");
}

TEST(IListTest, MatchSpecsCarryLabels) {
  Ctx ctx = BuildFor(GenerateRetailerXml(), "Texas apparel retailer");
  const LabelTable& labels = ctx.db.index().labels();
  for (const auto& item : ctx.ilist.items()) {
    switch (item.kind) {
      case IListItemKind::kKeyword:
        EXPECT_FALSE(item.token.empty());
        break;
      case IListItemKind::kEntityName:
        EXPECT_NE(item.entity_label, kInvalidLabel);
        break;
      case IListItemKind::kResultKey:
      case IListItemKind::kDominantFeature:
        EXPECT_NE(item.entity_label, kInvalidLabel);
        EXPECT_NE(item.attribute_label, kInvalidLabel);
        EXPECT_FALSE(item.value.empty());
        break;
    }
  }
  // Spot-check one feature's labels: Houston is (store, city, Houston).
  for (const auto& item : ctx.ilist.items()) {
    if (item.display == "Houston") {
      EXPECT_EQ(labels.Name(item.entity_label), "store");
      EXPECT_EQ(labels.Name(item.attribute_label), "city");
      EXPECT_EQ(item.value, "Houston");
    }
  }
}

}  // namespace
}  // namespace extract
