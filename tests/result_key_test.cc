#include "snippet/result_key.h"

#include <gtest/gtest.h>

#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"
#include "search/search_engine.h"

namespace extract {
namespace {

struct Ctx {
  XmlDatabase db;
  std::vector<QueryResult> results;
  Query query;
};

Ctx RunQuery(std::string xml, const std::string& query_text) {
  auto db = XmlDatabase::Load(xml);
  EXPECT_TRUE(db.ok()) << db.status();
  Query query = Query::Parse(query_text);
  XSeekEngine engine;
  auto results = engine.Search(*db, query);
  EXPECT_TRUE(results.ok()) << results.status();
  return Ctx{std::move(*db), std::move(*results), std::move(query)};
}

ResultKeyInfo KeyOf(const Ctx& ctx, const QueryResult& result) {
  ReturnEntityInfo entity = IdentifyReturnEntity(
      ctx.db.index(), ctx.db.classification(), ctx.query, result.root);
  return IdentifyResultKey(ctx.db.index(), ctx.db.classification(),
                           ctx.db.keys(), entity, result.root);
}

TEST(ResultKeyTest, PaperExampleBrookBrothers) {
  // §2.2: "eXtract adds the value of the key attribute of retailer: Brook
  // Brothers ... to IList".
  Ctx ctx = RunQuery(GenerateRetailerXml(), "Texas apparel retailer");
  ASSERT_EQ(ctx.results.size(), 1u);
  ResultKeyInfo key = KeyOf(ctx, ctx.results[0]);
  ASSERT_TRUE(key.found());
  EXPECT_EQ(key.value, "Brook Brothers");
  EXPECT_EQ(ctx.db.index().labels().Name(key.entity_label), "retailer");
  EXPECT_EQ(ctx.db.index().labels().Name(key.attribute_label), "name");
  EXPECT_TRUE(ctx.db.index().is_text(key.value_node));
}

TEST(ResultKeyTest, StoreKeysDistinguishDemoResults) {
  // Figure 5: two results keyed "Levis" and "ESprit".
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_EQ(ctx.results.size(), 2u);
  ResultKeyInfo k0 = KeyOf(ctx, ctx.results[0]);
  ResultKeyInfo k1 = KeyOf(ctx, ctx.results[1]);
  ASSERT_TRUE(k0.found());
  ASSERT_TRUE(k1.found());
  EXPECT_EQ(k0.value, "Levis");
  EXPECT_EQ(k1.value, "ESprit");
}

TEST(ResultKeyTest, NotFoundWithoutReturnEntity) {
  Ctx ctx = RunQuery("<a><b>hello</b></a>", "hello");
  ASSERT_EQ(ctx.results.size(), 1u);
  ResultKeyInfo key = KeyOf(ctx, ctx.results[0]);
  EXPECT_FALSE(key.found());
}

TEST(ResultKeyTest, NotFoundWhenEntityHasNoAttributes) {
  Ctx ctx = RunQuery(R"(<db>
    <g><w><t>k1</t></w></g>
    <g><w><t>k1</t></w></g>
  </db>)",
                "k1 g");
  ASSERT_GE(ctx.results.size(), 1u);
  ResultKeyInfo key = KeyOf(ctx, ctx.results[0]);
  EXPECT_FALSE(key.found());
}

TEST(ResultKeyTest, UsesFirstInstanceInDocumentOrder) {
  // Return entity "item" has two instances in the result; the key value
  // comes from the first one.
  Ctx ctx = RunQuery(R"(<db>
    <group>
      <item><id>first</id><v>k1</v></item>
      <item><id>second</id><v>k1</v></item>
    </group>
    <group>
      <item><id>third</id><v>other</v></item>
    </group>
  </db>)",
                "item k1");
  ASSERT_GE(ctx.results.size(), 1u);
  ResultKeyInfo key = KeyOf(ctx, ctx.results[0]);
  ASSERT_TRUE(key.found());
  EXPECT_EQ(key.value, "first");
}

TEST(ResultKeyTest, MissingKeyAttributeOnInstanceFallsThrough) {
  // The first return-entity instance lacks the mined key attribute (id);
  // the key value is read off the next instance that has it.
  Ctx ctx = RunQuery(R"(<db>
    <items>
      <item><v>k1</v></item>
      <item><id>I2</id><v>k2</v></item>
      <item><id>I3</id><v>k1</v></item>
    </items>
  </db>)",
                "k1 k2");
  ASSERT_EQ(ctx.results.size(), 1u);
  ResultKeyInfo key = KeyOf(ctx, ctx.results[0]);
  ASSERT_TRUE(key.found());
  EXPECT_EQ(ctx.db.index().labels().Name(key.attribute_label), "id");
  EXPECT_EQ(key.value, "I2");
}

}  // namespace
}  // namespace extract
