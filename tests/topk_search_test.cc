// Incremental top-k search must be indistinguishable from blocking search
// truncated to k: identical pages (documents, roots, bitwise-equal scores)
// for every k/thread/partition configuration and across repeated runs,
// identical error reporting when producers fail mid-enumeration, and sound
// monotone shard bounds — while actually terminating early on skewed
// corpora. Also covers the RankResults top-k fast path, the selector
// warm-start trace, and page-gated ServeQuery streaming. Run under
// ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "datagen/movies_dataset.h"
#include "datagen/random_xml.h"
#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"
#include "search/corpus.h"
#include "search/ranking.h"
#include "snippet/instance_selector.h"
#include "snippet/snippet_tree.h"

namespace extract {
namespace {

// Demo data sets plus synthetic documents, several loaded with a fine
// partition grid so the incremental enumerator actually runs chunked.
XmlCorpus MakeWideCorpus() {
  XmlCorpus corpus;
  LoadOptions partitioned;
  partitioned.partitioning.target_nodes_per_partition = 64;
  EXPECT_TRUE(
      corpus.AddDocument("retailer", GenerateRetailerXml(), partitioned).ok());
  EXPECT_TRUE(corpus.AddDocument("stores", GenerateStoresXml(), partitioned)
                  .ok());
  EXPECT_TRUE(corpus.AddDocument("movies", GenerateMoviesXml()).ok());
  for (int d = 0; d < 5; ++d) {
    RandomXmlOptions options;
    options.levels = 2;
    options.entities_per_parent = 6;
    options.seed = 1000 + d;
    EXPECT_TRUE(corpus
                    .AddDocument("random" + std::to_string(d),
                                 GenerateRandomXml(options).xml)
                    .ok());
  }
  return corpus;
}

void ExpectSamePage(const std::vector<CorpusResult>& expected,
                    const std::vector<CorpusResult>& actual,
                    const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].document, actual[i].document)
        << label << " hit " << i;
    EXPECT_EQ(expected[i].result.root, actual[i].result.root)
        << label << " hit " << i;
    // Bitwise double equality: both paths run the identical per-document
    // scoring computation, so even the last ulp must match.
    EXPECT_EQ(expected[i].score, actual[i].score) << label << " hit " << i;
  }
}

std::vector<CorpusResult> Prefix(const std::vector<CorpusResult>& page,
                                 size_t k) {
  std::vector<CorpusResult> out(page.begin(),
                                page.begin() + std::min(k, page.size()));
  return out;
}

TEST(TopKSearchTest, MatchesBlockingPrefixAcrossConfigurations) {
  XmlCorpus corpus = MakeWideCorpus();
  XSeekEngine engine;
  const char* queries[] = {"texas", "texas store", "drama", "v1_0 v1_1"};

  CorpusServingOptions sequential;
  sequential.search_threads = 1;

  for (const char* text : queries) {
    Query query = Query::Parse(text);
    auto full = corpus.SearchAll(query, engine, RankingOptions{}, sequential);
    ASSERT_TRUE(full.ok()) << full.status();
    for (size_t k : {size_t{1}, size_t{3}, size_t{5}, size_t{10},
                     size_t{1000}}) {
      for (size_t threads : {size_t{0}, size_t{1}, size_t{2}, size_t{4},
                             size_t{8}}) {
        CorpusServingOptions serving;
        serving.search_threads = threads;
        for (int run = 0; run < 2; ++run) {  // repeated runs: no schedule dep
          TopKSearchStats stats;
          auto page = corpus.SearchTopK(query, engine, RankingOptions{},
                                        serving, k, &stats);
          ASSERT_TRUE(page.ok()) << page.status();
          ExpectSamePage(Prefix(*full, k), *page,
                         std::string(text) + " k=" + std::to_string(k) +
                             " threads=" + std::to_string(threads) + " run=" +
                             std::to_string(run));
          EXPECT_TRUE(stats.finished);
          EXPECT_EQ(stats.results_released, std::min(k, full->size()));
          EXPECT_LE(stats.candidates_scored, stats.candidates_total);
        }
      }
    }
  }
}

TEST(TopKSearchTest, MatchesBlockingWithEngineMaxResults) {
  XmlCorpus corpus = MakeWideCorpus();
  SearchOptions options;
  options.max_results = 3;
  XSeekEngine engine(options);
  Query query = Query::Parse("texas store");
  CorpusServingOptions sequential;
  sequential.search_threads = 1;
  auto full = corpus.SearchAll(query, engine, RankingOptions{}, sequential);
  ASSERT_TRUE(full.ok()) << full.status();
  for (size_t k : {size_t{2}, size_t{5}, size_t{100}}) {
    auto page = corpus.SearchTopK(query, engine, RankingOptions{},
                                  CorpusServingOptions{}, k);
    ASSERT_TRUE(page.ok()) << page.status();
    ExpectSamePage(Prefix(*full, k), *page, "max_results k=" +
                                                std::to_string(k));
  }
}

TEST(TopKSearchTest, ZeroKAndEmptyCorpus) {
  XmlCorpus corpus = MakeWideCorpus();
  XSeekEngine engine;
  auto page = corpus.SearchTopK(Query::Parse("texas"), engine,
                                RankingOptions{}, CorpusServingOptions{}, 0);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(page->empty());

  XmlCorpus empty;
  auto empty_page = empty.SearchTopK(Query::Parse("texas"), engine,
                                     RankingOptions{}, CorpusServingOptions{},
                                     5);
  ASSERT_TRUE(empty_page.ok());
  EXPECT_TRUE(empty_page->empty());
}

// ------------------------------------------------------------ skew / bounds

// A corpus where a few deep "hot" documents dominate the ranking and many
// shallow "cold" documents each contain the keywords exactly once: every
// cold document's score upper bound (~ depth + 1 + 2) sits far below the
// hot hits' scores (~ 9+), so the threshold merge must settle the page
// without ever pulling a cold producer.
std::string HotDocumentXml(int products) {
  std::string xml = "<site><a><b><c><d><e><f>";
  for (int i = 0; i < products; ++i) {
    xml +=
        "<product><name>alpha alpha alpha</name>"
        "<desc>beta beta beta</desc></product>";
  }
  xml += "</f></e></d></c></b></a></site>";
  return xml;
}

std::string ColdDocumentXml() {
  return "<site><x>alpha</x><y>beta</y></site>";
}

TEST(TopKSearchTest, EarlyTerminationOnSkewedCorpus) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("hot_a", HotDocumentXml(4)).ok());
  ASSERT_TRUE(corpus.AddDocument("hot_b", HotDocumentXml(4)).ok());
  for (int d = 0; d < 12; ++d) {
    ASSERT_TRUE(
        corpus.AddDocument("cold" + std::to_string(d), ColdDocumentXml())
            .ok());
  }
  XSeekEngine engine;
  Query query = Query::Parse("alpha beta");
  // Pin the pull width: the no-front descent pulls up to `search_threads`
  // highest-bound producers, and an unpinned width on a many-core machine
  // could cover the whole corpus in the very first round.
  CorpusServingOptions serving;
  serving.search_threads = 2;
  CorpusServingOptions sequential;
  sequential.search_threads = 1;

  auto full = corpus.SearchAll(query, engine, RankingOptions{}, sequential);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_GE(full->size(), 8u);

  const size_t k = 5;
  TopKSearchStats stats;
  auto page = corpus.SearchTopK(query, engine, RankingOptions{}, serving, k,
                                &stats);
  ASSERT_TRUE(page.ok()) << page.status();
  ExpectSamePage(Prefix(*full, k), *page, "skewed corpus");

  EXPECT_TRUE(stats.finished);
  EXPECT_TRUE(stats.early_terminated);
  EXPECT_EQ(stats.results_released, k);
  EXPECT_EQ(stats.producers, corpus.size());
  // The oracle: early termination did real work-skipping — the cold
  // documents' candidates were never scanned.
  EXPECT_LT(stats.candidates_scored, stats.candidates_total);
  EXPECT_GT(stats.first_result_ns, 0u);

  // The search-phase breakdown landed in the corpus stage stats.
  bool saw_enumerate = false;
  bool saw_merge = false;
  for (const StageStat& stat : corpus.StageStatsSnapshot()) {
    if (stat.name == "search.enumerate") saw_enumerate = true;
    if (stat.name == "search.merge") saw_merge = true;
  }
  EXPECT_TRUE(saw_enumerate);
  EXPECT_TRUE(saw_merge);
}

TEST(TopKSearchTest, ProducerBoundIsMonotoneAndSound) {
  LoadOptions load;
  load.partitioning.target_nodes_per_partition = 64;
  auto db = XmlDatabase::Load(GenerateStoresXml(), load);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_GT(db->partitions().count(), 1u);

  XSeekEngine engine;
  RankingOptions ranking;
  Query query = Query::Parse("texas store");
  auto opened = engine.OpenIncremental(*db, query, ranking, 0);
  ASSERT_TRUE(opened.ok()) << opened.status();
  ResultProducer& producer = **opened;

  EXPECT_EQ(producer.candidates_scored(), 0u);
  std::vector<RankedResult> all;
  double prev_bound = std::numeric_limits<double>::infinity();
  size_t pulls = 0;
  while (!producer.Exhausted()) {
    const double bound = producer.ScoreUpperBound();
    EXPECT_LE(bound, prev_bound) << "bound increased at pull " << pulls;
    std::vector<RankedResult> chunk;
    ASSERT_TRUE(producer.Pull(&chunk).ok());
    for (const RankedResult& r : chunk) {
      // Soundness: nothing a pull emits may beat the bound advertised
      // immediately before it.
      EXPECT_LE(r.score, bound) << "root " << r.result.root;
      all.push_back(r);
    }
    prev_bound = bound;
    ++pulls;
  }
  EXPECT_GT(pulls, 1u) << "partitioned document should need several pulls";
  EXPECT_EQ(producer.ScoreUpperBound(),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(producer.candidates_scored(), producer.candidates_total());

  // The union of all pulls is exactly the blocking search, scored.
  auto searched = engine.Search(*db, query);
  ASSERT_TRUE(searched.ok());
  std::vector<RankedResult> expected = RankResults(*db, *searched, ranking);
  ASSERT_EQ(expected.size(), all.size());
  auto by_root = [](const RankedResult& a, const RankedResult& b) {
    return a.result.root < b.result.root;
  };
  std::sort(expected.begin(), expected.end(), by_root);
  std::sort(all.begin(), all.end(), by_root);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].result.root, all[i].result.root);
    EXPECT_EQ(expected[i].result.slca, all[i].result.slca);
    EXPECT_EQ(expected[i].result.matches, all[i].result.matches);
    EXPECT_EQ(expected[i].score, all[i].score);
  }
}

// --------------------------------------------------------------- failures

// Fails the blocking Search for chosen documents; its default-adapter
// incremental producer (+infinity bound until the first pull) surfaces the
// same error mid-merge, so the coordinator's parity drain is exercised.
class FailingEngine : public SearchEngine {
 public:
  FailingEngine(const XmlCorpus& corpus, std::vector<std::string> fail_docs) {
    for (const std::string& name : fail_docs) {
      fail_dbs_.push_back(corpus.Find(name));
    }
  }

  Result<std::vector<QueryResult>> Search(const XmlDatabase& db,
                                          const Query& query) const override {
    for (const XmlDatabase* fail : fail_dbs_) {
      if (fail == &db) {
        return Status::Internal("engine exploded on this shard");
      }
    }
    return inner_.Search(db, query);
  }

 private:
  XSeekEngine inner_;
  std::vector<const XmlDatabase*> fail_dbs_;
};

// Delegates a few pulls to the real incremental producer, then fails with
// the same error its blocking Search reports — a mid-enumeration failure
// after genuine results were already buffered.
class MidStreamFailProducer : public ResultProducer {
 public:
  MidStreamFailProducer(std::unique_ptr<ResultProducer> inner,
                        size_t pulls_before_fail, Status failure)
      : inner_(std::move(inner)),
        pulls_before_fail_(pulls_before_fail),
        failure_(std::move(failure)) {}

  Status Pull(std::vector<RankedResult>* out) override {
    if (pulls_ < pulls_before_fail_) {
      ++pulls_;
      return inner_->Pull(out);
    }
    return failure_;
  }
  bool Exhausted() const override { return false; }
  double ScoreUpperBound() const override {
    return std::numeric_limits<double>::infinity();
  }
  size_t candidates_total() const override {
    return inner_->candidates_total();
  }
  size_t candidates_scored() const override {
    return inner_->candidates_scored();
  }

 private:
  std::unique_ptr<ResultProducer> inner_;
  size_t pulls_ = 0;
  size_t pulls_before_fail_;
  Status failure_;
};

// Fails chosen documents mid-enumeration (incremental) and up front
// (blocking) with the same status — the shapes the parity contract equates.
class MidStreamFailEngine : public SearchEngine {
 public:
  MidStreamFailEngine(const XmlCorpus& corpus,
                      std::vector<std::string> fail_docs, bool fail_at_open)
      : fail_at_open_(fail_at_open) {
    for (const std::string& name : fail_docs) {
      fail_dbs_.push_back(corpus.Find(name));
    }
  }

  Result<std::vector<QueryResult>> Search(const XmlDatabase& db,
                                          const Query& query) const override {
    if (Fails(db)) return Failure();
    return inner_.Search(db, query);
  }

  Result<std::unique_ptr<ResultProducer>> OpenIncremental(
      const XmlDatabase& db, const Query& query, const RankingOptions& ranking,
      size_t top_k_hint) const override {
    auto opened = inner_.OpenIncremental(db, query, ranking, top_k_hint);
    if (!opened.ok()) return opened;
    if (!Fails(db)) return opened;
    if (fail_at_open_) return Failure();
    return Result<std::unique_ptr<ResultProducer>>(
        std::make_unique<MidStreamFailProducer>(std::move(*opened), 1,
                                                Failure()));
  }

 private:
  bool Fails(const XmlDatabase& db) const {
    for (const XmlDatabase* fail : fail_dbs_) {
      if (fail == &db) return true;
    }
    return false;
  }
  static Status Failure() {
    return Status::Internal("engine exploded mid-enumeration");
  }

  XSeekEngine inner_;
  std::vector<const XmlDatabase*> fail_dbs_;
  bool fail_at_open_;
};

void ExpectSameError(const Status& expected, const Status& actual,
                     const std::string& label) {
  ASSERT_FALSE(actual.ok()) << label;
  EXPECT_EQ(expected.code(), actual.code()) << label;
  EXPECT_EQ(expected.message(), actual.message()) << label;
}

TEST(TopKSearchTest, FailureReportsSequentialError) {
  XmlCorpus corpus = MakeWideCorpus();
  Query query = Query::Parse("texas");
  CorpusServingOptions sequential;
  sequential.search_threads = 1;

  const std::vector<std::vector<std::string>> failure_sets = {
      {"random2"},
      {"movies"},
      {"stores", "random0", "retailer"},
  };
  for (const auto& fail_docs : failure_sets) {
    // Three failure shapes: the default blocking adapter, a producer that
    // fails after buffering real results, and OpenIncremental failing
    // outright — all must report what the sequential loop reports.
    FailingEngine adapter_engine(corpus, fail_docs);
    MidStreamFailEngine mid_engine(corpus, fail_docs, /*fail_at_open=*/false);
    MidStreamFailEngine open_engine(corpus, fail_docs, /*fail_at_open=*/true);
    const SearchEngine* engines[] = {&adapter_engine, &mid_engine,
                                     &open_engine};
    const char* labels[] = {"adapter", "mid-stream", "open"};
    for (size_t e = 0; e < 3; ++e) {
      auto expected = corpus.SearchAll(query, *engines[e], RankingOptions{},
                                       sequential);
      ASSERT_FALSE(expected.ok()) << labels[e];
      for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
        CorpusServingOptions serving;
        serving.search_threads = threads;
        auto page = corpus.SearchTopK(query, *engines[e], RankingOptions{},
                                      serving, 5);
        ExpectSameError(expected.status(), page.status(),
                        std::string(labels[e]) + " threads=" +
                            std::to_string(threads));
      }
    }
  }
}

TEST(TopKSearchTest, EmptyQueryErrorMatchesSequential) {
  XmlCorpus corpus = MakeWideCorpus();
  XSeekEngine engine;
  CorpusServingOptions sequential;
  sequential.search_threads = 1;
  auto expected =
      corpus.SearchAll(Query{}, engine, RankingOptions{}, sequential);
  ASSERT_FALSE(expected.ok());
  auto page = corpus.SearchTopK(Query{}, engine, RankingOptions{},
                                CorpusServingOptions{}, 5);
  ExpectSameError(expected.status(), page.status(), "empty query");
}

// ------------------------------------------------------ rank-top-k / warm

TEST(TopKSearchTest, RankResultsTopKMatchesFullSort) {
  auto db = XmlDatabase::Load(HotDocumentXml(8));
  ASSERT_TRUE(db.ok());
  XSeekEngine engine;
  auto searched = engine.Search(*db, Query::Parse("alpha beta"));
  ASSERT_TRUE(searched.ok());
  ASSERT_GT(searched->size(), 3u);
  RankingOptions ranking;
  std::vector<RankedResult> full = RankResults(*db, *searched, ranking);
  for (size_t k = 0; k <= searched->size() + 2; ++k) {
    std::vector<RankedResult> fast = RankResults(*db, *searched, ranking, k);
    const size_t expect_n =
        (k == 0 || k >= full.size()) ? full.size() : k;
    ASSERT_EQ(fast.size(), expect_n) << "k=" << k;
    for (size_t i = 0; i < expect_n; ++i) {
      EXPECT_EQ(full[i].result.root, fast[i].result.root) << "k=" << k;
      EXPECT_EQ(full[i].score, fast[i].score) << "k=" << k;
    }
  }
}

TEST(TopKSearchTest, WarmSelectorMatchesColdAcrossBounds) {
  auto db = XmlDatabase::Load(GenerateStoresXml());
  ASSERT_TRUE(db.ok());
  const IndexedDocument& doc = db->index();
  const NodeId root = 0;

  // Synthetic items, one instance each, spread over the document — enough
  // accept/reject flips across bounds to exercise every replay path.
  std::vector<ItemInstances> instances;
  for (NodeId id = 1;
       id < static_cast<NodeId>(doc.num_nodes()) && instances.size() < 12;
       id += 17) {
    ItemInstances item;
    item.nodes.push_back(id);
    instances.push_back(std::move(item));
  }
  ASSERT_GE(instances.size(), 6u);

  GreedyTrace trace;
  // Ascending, descending, then jumping bounds: the warm run must equal
  // the cold run at every step, whatever the previous trace recorded.
  const size_t bounds[] = {0, 2, 4, 6, 8, 10, 20, 10, 8, 4, 2, 0, 20, 0, 6};
  for (size_t bound : bounds) {
    SelectorOptions options;
    options.size_bound = bound;
    Selection cold = SelectInstancesGreedy(doc, root, instances, options);
    Selection warm =
        SelectInstancesGreedy(doc, root, instances, options, &trace);
    EXPECT_EQ(cold.nodes, warm.nodes) << "bound=" << bound;
    EXPECT_EQ(cold.covered, warm.covered) << "bound=" << bound;
    EXPECT_TRUE(trace.valid);
  }

  // stop_on_first_overflow runs cold (and must not corrupt the trace).
  SelectorOptions overflow;
  overflow.size_bound = 4;
  overflow.stop_on_first_overflow = true;
  Selection cold = SelectInstancesGreedy(doc, root, instances, overflow);
  Selection warm = SelectInstancesGreedy(doc, root, instances, overflow,
                                         &trace);
  EXPECT_EQ(cold.nodes, warm.nodes);
  EXPECT_EQ(cold.covered, warm.covered);
  SelectorOptions after;
  after.size_bound = 6;
  EXPECT_EQ(SelectInstancesGreedy(doc, root, instances, after).covered,
            SelectInstancesGreedy(doc, root, instances, after, &trace).covered);
}

// ------------------------------------------------------- page-gated serving

void ExpectSameSnippets(const std::vector<Snippet>& expected,
                        const std::vector<Snippet>& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].result_root, actual[i].result_root)
        << label << " slot " << i;
    EXPECT_EQ(expected[i].nodes, actual[i].nodes) << label << " slot " << i;
    EXPECT_EQ(expected[i].covered, actual[i].covered)
        << label << " slot " << i;
    EXPECT_EQ(RenderSnippet(expected[i]), RenderSnippet(actual[i]))
        << label << " slot " << i;
  }
}

TEST(TopKSearchTest, PageGatedServeQueryMatchesBlocking) {
  XmlCorpus corpus = MakeWideCorpus();
  XSeekEngine engine;
  Query query = Query::Parse("texas store");
  SnippetOptions options;

  CorpusServingOptions blocking;
  blocking.search_threads = 1;
  auto blocking_stream =
      corpus.ServeQuery(query, engine, RankingOptions{}, blocking, options,
                        StreamOptions{});
  ASSERT_TRUE(blocking_stream.ok()) << blocking_stream.status();
  const size_t k = std::min<size_t>(4, blocking_stream->page().size());
  ASSERT_GT(k, 0u);
  auto blocking_snippets = blocking_stream->stream().Collect();
  ASSERT_TRUE(blocking_snippets.ok()) << blocking_snippets.status();

  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    CorpusServingOptions serving;
    serving.search_threads = 1;
    serving.page_size = k;
    StreamOptions stream;
    stream.num_threads = threads;
    stream.order = StreamOrder::kSlot;
    auto gated = corpus.ServeQuery(query, engine, RankingOptions{}, serving,
                                   options, stream);
    ASSERT_TRUE(gated.ok()) << gated.status();
    auto snippets = gated->stream().Collect();
    ASSERT_TRUE(snippets.ok()) << snippets.status();
    // Page identity after drain (the page grows while streaming).
    ExpectSamePage(Prefix(blocking_stream->page(), k), gated->page(),
                   "gated page threads=" + std::to_string(threads));
    std::vector<Snippet> expected;
    for (size_t i = 0; i < k; ++i) {
      expected.push_back((*blocking_snippets)[i].Clone());
    }
    ExpectSameSnippets(expected, *snippets,
                       "gated snippets threads=" + std::to_string(threads));
    TopKSearchStats stats = gated->SearchStats();
    EXPECT_TRUE(stats.finished);
    EXPECT_EQ(stats.results_released, k);
  }
}

TEST(TopKSearchTest, PageGatedServeQueryWithCacheIsIdentical) {
  XmlCorpus corpus = MakeWideCorpus();
  corpus.EnableSnippetCache();
  XSeekEngine engine;
  Query query = Query::Parse("texas store");
  SnippetOptions options;
  CorpusServingOptions serving;
  serving.search_threads = 1;
  serving.page_size = 4;
  StreamOptions stream;
  stream.order = StreamOrder::kSlot;

  auto first = corpus.ServeQuery(query, engine, RankingOptions{}, serving,
                                 options, stream);
  ASSERT_TRUE(first.ok()) << first.status();
  auto first_snippets = first->stream().Collect();
  ASSERT_TRUE(first_snippets.ok()) << first_snippets.status();

  // Second serve: every slot is a cache hit, output byte-identical.
  auto second = corpus.ServeQuery(query, engine, RankingOptions{}, serving,
                                  options, stream);
  ASSERT_TRUE(second.ok()) << second.status();
  auto second_snippets = second->stream().Collect();
  ASSERT_TRUE(second_snippets.ok()) << second_snippets.status();
  ExpectSameSnippets(*first_snippets, *second_snippets, "cached serve");
  ASSERT_NE(corpus.snippet_cache(), nullptr);
  EXPECT_GT(corpus.snippet_cache()->Stats().hits, 0u);
}

TEST(TopKSearchTest, PageGatedServeQueryCancellation) {
  XmlCorpus corpus = MakeWideCorpus();
  XSeekEngine engine;
  Query query = Query::Parse("texas store");
  CorpusServingOptions serving;
  serving.search_threads = 1;
  serving.page_size = 4;
  auto gated = corpus.ServeQuery(query, engine, RankingOptions{}, serving,
                                 SnippetOptions{}, StreamOptions{});
  ASSERT_TRUE(gated.ok()) << gated.status();
  gated->Cancel();
  size_t events = 0;
  while (auto event = gated->stream().Next()) ++events;
  // Every slot resolves (computed, cancelled, or trimmed by upstream
  // completion) — no hang, no double emission.
  EXPECT_LE(events, serving.page_size);
  EXPECT_EQ(events, gated->Stats().emitted);
}

TEST(TopKSearchTest, PageGatedServeQueryEmptyQueryError) {
  XmlCorpus corpus = MakeWideCorpus();
  XSeekEngine engine;
  CorpusServingOptions blocking;
  blocking.search_threads = 1;
  auto expected = corpus.ServeQuery(Query{}, engine, RankingOptions{},
                                    blocking, SnippetOptions{},
                                    StreamOptions{});
  ASSERT_FALSE(expected.ok());
  CorpusServingOptions serving;
  serving.page_size = 4;
  auto gated = corpus.ServeQuery(Query{}, engine, RankingOptions{}, serving,
                                 SnippetOptions{}, StreamOptions{});
  ExpectSameError(expected.status(), gated.status(), "empty query serve");
}

TEST(TopKSearchTest, PageGatedServeQueryMidSearchFailure) {
  XmlCorpus corpus = MakeWideCorpus();
  MidStreamFailEngine engine(corpus, {"movies"}, /*fail_at_open=*/false);
  Query query = Query::Parse("texas");
  CorpusServingOptions serving;
  serving.search_threads = 1;
  serving.page_size = 50;  // larger than the total hit count, so the
                           // failing producer must be reached
  auto gated = corpus.ServeQuery(query, engine, RankingOptions{}, serving,
                                 SnippetOptions{}, StreamOptions{});
  ASSERT_TRUE(gated.ok()) << gated.status();
  auto collected = gated->stream().Collect();
  ASSERT_FALSE(collected.ok());
  EXPECT_EQ(collected.status().code(), StatusCode::kInternal);
  EXPECT_NE(collected.status().message().find("engine exploded"),
            std::string::npos)
      << collected.status().message();
}

}  // namespace
}  // namespace extract
