#include "index/inverted_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "xml/parser.h"

namespace extract {
namespace {

IndexedDocument MustBuild(std::string_view xml) {
  auto doc = ParseXml(xml);
  EXPECT_TRUE(doc.ok()) << doc.status();
  auto idx = IndexedDocument::Build(**doc);
  EXPECT_TRUE(idx.ok()) << idx.status();
  return std::move(*idx);
}

TEST(InvertedIndexTest, TextTokensPostToOwnerElement) {
  IndexedDocument doc = MustBuild("<a><b>hello world</b></a>");
  InvertedIndex index = InvertedIndex::Build(doc);
  const PostingList* hello = index.Find("hello");
  ASSERT_NE(hello, nullptr);
  ASSERT_EQ(hello->size(), 1u);
  EXPECT_EQ(hello->nodes[0], 1);  // <b>
  EXPECT_EQ(hello->sources[0], PostingSource::kTextValue);
}

TEST(InvertedIndexTest, TagNameTokensPostToElement) {
  IndexedDocument doc = MustBuild("<library><book/></library>");
  InvertedIndex index = InvertedIndex::Build(doc);
  const PostingList* book = index.Find("book");
  ASSERT_NE(book, nullptr);
  EXPECT_EQ(book->nodes[0], 1);
  EXPECT_EQ(book->sources[0], PostingSource::kTagName);
}

TEST(InvertedIndexTest, TagAndValueMergeSources) {
  IndexedDocument doc = MustBuild("<a><name>name</name></a>");
  InvertedIndex index = InvertedIndex::Build(doc);
  const PostingList* name = index.Find("name");
  ASSERT_NE(name, nullptr);
  ASSERT_EQ(name->size(), 1u);
  EXPECT_EQ(name->sources[0], PostingSource::kBoth);
}

TEST(InvertedIndexTest, CaseFolding) {
  IndexedDocument doc = MustBuild("<a><b>Texas TEXAS texas</b></a>");
  InvertedIndex index = InvertedIndex::Build(doc);
  const PostingList* texas = index.Find("texas");
  ASSERT_NE(texas, nullptr);
  EXPECT_EQ(texas->size(), 1u);  // one element, deduplicated
  EXPECT_EQ(index.Find("Texas"), nullptr);  // lookups are by folded token
}

TEST(InvertedIndexTest, PostingsSortedByDocumentOrder) {
  IndexedDocument doc =
      MustBuild("<a><b>x</b><c><d>x</d></c><e>x</e></a>");
  InvertedIndex index = InvertedIndex::Build(doc);
  const PostingList* x = index.Find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_TRUE(std::is_sorted(x->nodes.begin(), x->nodes.end()));
  EXPECT_EQ(x->size(), 3u);
}

TEST(InvertedIndexTest, MixedContentKeepsOrderSorted) {
  // The parent element's text comes after a nested element's text: postings
  // must still come out sorted (regression for the normalization pass).
  IndexedDocument doc = MustBuild("<a><b>x</b>x</a>");
  InvertedIndex index = InvertedIndex::Build(doc);
  const PostingList* x = index.Find("x");
  ASSERT_NE(x, nullptr);
  ASSERT_EQ(x->size(), 2u);
  EXPECT_TRUE(std::is_sorted(x->nodes.begin(), x->nodes.end()));
  EXPECT_EQ(x->nodes[0], 0);  // <a> owns the trailing text
  EXPECT_EQ(x->nodes[1], 1);  // <b>
}

TEST(InvertedIndexTest, MultiWordValues) {
  IndexedDocument doc = MustBuild("<r><name>Brook Brothers</name></r>");
  InvertedIndex index = InvertedIndex::Build(doc);
  EXPECT_NE(index.Find("brook"), nullptr);
  EXPECT_NE(index.Find("brothers"), nullptr);
  EXPECT_EQ(index.Find("brook brothers"), nullptr);  // tokens, not phrases
}

TEST(InvertedIndexTest, MissingTokenReturnsNull) {
  IndexedDocument doc = MustBuild("<a>x</a>");
  InvertedIndex index = InvertedIndex::Build(doc);
  EXPECT_EQ(index.Find("zzz"), nullptr);
}

TEST(InvertedIndexTest, VocabularyAndTotals) {
  IndexedDocument doc = MustBuild("<a><b>x y</b><c>x</c></a>");
  InvertedIndex index = InvertedIndex::Build(doc);
  // tokens: a, b, c (tags) + x, y (values)
  EXPECT_EQ(index.vocabulary_size(), 5u);
  // postings: a:1 b:1 c:1 x:2 y:1
  EXPECT_EQ(index.total_postings(), 6u);
  EXPECT_EQ(index.Tokens().size(), 5u);
}

TEST(InvertedIndexTest, ExpandedXmlAttributesIndexed) {
  IndexedDocument doc = MustBuild(R"(<store name="Levis"/>)");
  InvertedIndex index = InvertedIndex::Build(doc);
  const PostingList* levis = index.Find("levis");
  ASSERT_NE(levis, nullptr);
  EXPECT_EQ(levis->nodes[0], 1);  // the expanded <name> element
  EXPECT_NE(index.Find("name"), nullptr);
}

}  // namespace
}  // namespace extract
