#include "snippet/distinguishability.h"

#include <gtest/gtest.h>

#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"

namespace extract {
namespace {

struct Ctx {
  XmlDatabase db;
  Query query;
  std::vector<QueryResult> results;
};

Ctx RunQuery(std::string xml, const std::string& query_text) {
  auto db = XmlDatabase::Load(std::move(xml));
  EXPECT_TRUE(db.ok()) << db.status();
  Query query = Query::Parse(query_text);
  XSeekEngine engine;
  auto results = engine.Search(*db, query);
  EXPECT_TRUE(results.ok()) << results.status();
  return Ctx{std::move(*db), std::move(query), std::move(*results)};
}

Snippet MakeSnippet(std::initializer_list<const char*> covered_items,
                    const char* key = nullptr) {
  Snippet s;
  for (const char* item : covered_items) {
    IListItem i;
    i.display = item;
    s.ilist.Add(i);
    s.covered.push_back(true);
  }
  if (key != nullptr) {
    s.key.value = key;
    s.key.value_node = 1;  // marks found()
  }
  return s;
}

TEST(SnippetOverlapTest, IdenticalAndDisjoint) {
  Snippet a = MakeSnippet({"x", "y"});
  Snippet b = MakeSnippet({"x", "y"});
  Snippet c = MakeSnippet({"p", "q"});
  EXPECT_DOUBLE_EQ(SnippetItemOverlap(a, b), 1.0);
  EXPECT_DOUBLE_EQ(SnippetItemOverlap(a, c), 0.0);
}

TEST(SnippetOverlapTest, PartialAndCaseInsensitive) {
  Snippet a = MakeSnippet({"Texas", "Houston", "man"});
  Snippet b = MakeSnippet({"texas", "Austin"});
  // intersection {texas}, union {texas, houston, man, austin} -> 0.25.
  EXPECT_DOUBLE_EQ(SnippetItemOverlap(a, b), 0.25);
}

TEST(SnippetOverlapTest, UncoveredItemsIgnored) {
  Snippet a = MakeSnippet({"x", "y"});
  a.covered[1] = false;  // y not actually in the snippet
  Snippet b = MakeSnippet({"y"});
  EXPECT_DOUBLE_EQ(SnippetItemOverlap(a, b), 0.0);
}

TEST(SnippetOverlapTest, EmptySnippets) {
  Snippet a, b;
  EXPECT_DOUBLE_EQ(SnippetItemOverlap(a, b), 0.0);
}

TEST(MeasureDistinctnessTest, CountsKeysAndOverlap) {
  std::vector<Snippet> batch;
  batch.push_back(MakeSnippet({"x", "y"}, "K1"));
  batch.push_back(MakeSnippet({"x", "y"}, "K2"));
  batch.push_back(MakeSnippet({"x", "z"}, "K1"));
  BatchDistinctness d = MeasureDistinctness(batch);
  EXPECT_EQ(d.results, 3u);
  EXPECT_EQ(d.keyed_snippets, 3u);
  EXPECT_EQ(d.distinct_keys, 2u);  // K1 repeats
  // overlaps: (1,2)=1.0, (1,3)=1/3, (2,3)=1/3 -> mean = 5/9.
  EXPECT_NEAR(d.mean_pairwise_overlap, 5.0 / 9.0, 1e-9);
}

TEST(MeasureDistinctnessTest, SingleSnippet) {
  std::vector<Snippet> batch;
  batch.push_back(MakeSnippet({"x"}, "K"));
  BatchDistinctness d = MeasureDistinctness(batch);
  EXPECT_EQ(d.results, 1u);
  EXPECT_EQ(d.mean_pairwise_overlap, 0.0);
}

TEST(DiversifyTest, MatchesPipelineWhenDisabled) {
  RetailerDatasetOptions dataset;
  dataset.num_matching_retailers = 3;
  Ctx ctx = RunQuery(GenerateRetailerXml(dataset), "texas apparel retailer");
  ASSERT_EQ(ctx.results.size(), 3u);
  SnippetOptions options;
  options.size_bound = 12;
  SnippetGenerator generator(&ctx.db);
  auto plain = generator.GenerateAll(ctx.query, ctx.results, options);
  ASSERT_TRUE(plain.ok());
  DiversifyOptions off;
  off.commonality_penalty = 0.0;
  auto diverse =
      GenerateDiverseSnippets(ctx.db, ctx.query, ctx.results, options, off);
  ASSERT_TRUE(diverse.ok());
  ASSERT_EQ(plain->size(), diverse->size());
  for (size_t i = 0; i < plain->size(); ++i) {
    EXPECT_EQ((*plain)[i].ilist.ToString(), (*diverse)[i].ilist.ToString());
    EXPECT_EQ((*plain)[i].nodes, (*diverse)[i].nodes);
  }
}

TEST(DiversifyTest, SingleResultUnchanged) {
  Ctx ctx = RunQuery(GenerateRetailerXml(), "texas apparel retailer");
  ASSERT_EQ(ctx.results.size(), 1u);
  SnippetOptions options;
  options.size_bound = 12;
  SnippetGenerator generator(&ctx.db);
  auto plain = generator.GenerateAll(ctx.query, ctx.results, options);
  auto diverse = GenerateDiverseSnippets(ctx.db, ctx.query, ctx.results,
                                         options, DiversifyOptions{});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(diverse.ok());
  EXPECT_EQ((*plain)[0].ilist.ToString(), (*diverse)[0].ilist.ToString());
}

TEST(DiversifyTest, ReducesOverlapOnSharedFeatureBatch) {
  // Three groups share feature (item, color, red) but each has a private
  // dominant size value; diversification should prefer the private ones.
  std::string xml = R"(<db>
    <group>
      <item><color>red</color><size>small</size></item>
      <item><color>red</color><size>small</size></item>
      <item><color>red</color><size>small</size></item>
      <item><color>blue</color><size>large</size></item>
    </group>
    <group>
      <item><color>red</color><size>medium</size></item>
      <item><color>red</color><size>medium</size></item>
      <item><color>red</color><size>medium</size></item>
      <item><color>blue</color><size>small</size></item>
    </group>
    <group>
      <item><color>red</color><size>large</size></item>
      <item><color>red</color><size>large</size></item>
      <item><color>red</color><size>large</size></item>
      <item><color>blue</color><size>medium</size></item>
    </group>
  </db>)";
  Ctx ctx = RunQuery(xml, "group red");
  ASSERT_EQ(ctx.results.size(), 3u);
  SnippetOptions options;
  options.size_bound = 4;  // tight: only one feature fits after the paths
  SnippetGenerator generator(&ctx.db);
  auto plain = generator.GenerateAll(ctx.query, ctx.results, options);
  ASSERT_TRUE(plain.ok());
  DiversifyOptions diversify;
  diversify.commonality_penalty = 2.0;
  auto diverse = GenerateDiverseSnippets(ctx.db, ctx.query, ctx.results,
                                         options, diversify);
  ASSERT_TRUE(diverse.ok());
  BatchDistinctness before = MeasureDistinctness(*plain);
  BatchDistinctness after = MeasureDistinctness(*diverse);
  EXPECT_LE(after.mean_pairwise_overlap, before.mean_pairwise_overlap);
}

TEST(DiversifyTest, StillRespectsBound) {
  RetailerDatasetOptions dataset;
  dataset.num_matching_retailers = 3;
  Ctx ctx = RunQuery(GenerateRetailerXml(dataset), "texas apparel retailer");
  for (size_t bound : {4u, 8u, 16u}) {
    SnippetOptions options;
    options.size_bound = bound;
    auto diverse = GenerateDiverseSnippets(ctx.db, ctx.query, ctx.results,
                                           options, DiversifyOptions{});
    ASSERT_TRUE(diverse.ok());
    for (const Snippet& s : *diverse) {
      EXPECT_LE(s.edges(), bound);
      EXPECT_EQ(s.tree->CountEdges(), s.edges());
    }
  }
}

TEST(DiversifyTest, InvalidResultRejected) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  std::vector<QueryResult> bogus(1);
  bogus[0].root = kInvalidNode;
  EXPECT_FALSE(GenerateDiverseSnippets(ctx.db, ctx.query, bogus,
                                       SnippetOptions{}, DiversifyOptions{})
                   .ok());
}

}  // namespace
}  // namespace extract
