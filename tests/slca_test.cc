#include "search/slca.h"

#include <gtest/gtest.h>

#include <functional>

#include "common/random.h"
#include "xml/parser.h"

namespace extract {
namespace {

struct Db {
  std::unique_ptr<XmlDocument> dom;
  IndexedDocument doc;
  InvertedIndex index;
};

Db Load(std::string_view xml) {
  auto parsed = ParseXml(xml);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  auto idx = IndexedDocument::Build(**parsed);
  EXPECT_TRUE(idx.ok()) << idx.status();
  Db out{std::move(*parsed), std::move(*idx), {}};
  out.index = InvertedIndex::Build(out.doc);
  return out;
}

std::vector<const PostingList*> Lists(const Db& db,
                                      std::initializer_list<const char*> kws) {
  std::vector<const PostingList*> out;
  for (const char* kw : kws) out.push_back(db.index.Find(kw));
  return out;
}

TEST(SlcaTest, SingleKeywordReturnsMatchesThemselves) {
  Db db = Load("<a><b>x</b><c><d>x</d></c></a>");
  auto slca = ComputeSlcaIndexedLookupEager(db.doc, Lists(db, {"x"}));
  // Matches are <b> and <d>; neither is an ancestor of the other.
  ASSERT_EQ(slca.size(), 2u);
  EXPECT_EQ(db.doc.label_name(slca[0]), "b");
  EXPECT_EQ(db.doc.label_name(slca[1]), "d");
}

TEST(SlcaTest, TwoKeywordsMeetAtCommonAncestor) {
  Db db = Load("<a><b><x>1</x><y>2</y></b><c><x>1</x></c></a>");
  // "1" and "2" co-occur only under <b>.
  auto slca = ComputeSlcaIndexedLookupEager(db.doc, Lists(db, {"1", "2"}));
  ASSERT_EQ(slca.size(), 1u);
  EXPECT_EQ(db.doc.label_name(slca[0]), "b");
}

TEST(SlcaTest, AncestorCandidateRemoved) {
  // Both stores contain (texas, shoes); the root also contains both but is
  // an ancestor of smaller witnesses.
  Db db = Load(R"(<stores>
    <store><state>texas</state><item>shoes</item></store>
    <store><state>texas</state><item>shoes</item></store>
  </stores>)");
  auto slca =
      ComputeSlcaIndexedLookupEager(db.doc, Lists(db, {"texas", "shoes"}));
  ASSERT_EQ(slca.size(), 2u);
  EXPECT_EQ(db.doc.label_name(slca[0]), "store");
  EXPECT_EQ(db.doc.label_name(slca[1]), "store");
}

TEST(SlcaTest, CrossBranchKeywordsMeetAtRoot) {
  Db db = Load("<a><b>x</b><c>y</c></a>");
  auto slca = ComputeSlcaIndexedLookupEager(db.doc, Lists(db, {"x", "y"}));
  ASSERT_EQ(slca.size(), 1u);
  EXPECT_EQ(slca[0], db.doc.root());
}

TEST(SlcaTest, KeywordMatchingTagName) {
  Db db = Load("<retailers><retailer><state>texas</state></retailer></retailers>");
  auto slca =
      ComputeSlcaIndexedLookupEager(db.doc, Lists(db, {"retailer", "texas"}));
  ASSERT_EQ(slca.size(), 1u);
  EXPECT_EQ(db.doc.label_name(slca[0]), "retailer");
}

TEST(SlcaTest, EmptyOnMissingKeyword) {
  Db db = Load("<a><b>x</b></a>");
  std::vector<const PostingList*> lists = Lists(db, {"x"});
  lists.push_back(nullptr);  // missing keyword
  EXPECT_TRUE(ComputeSlcaIndexedLookupEager(db.doc, lists).empty());
  EXPECT_TRUE(ComputeSlcaBySubtreeCounts(db.doc, lists).empty());
}

TEST(SlcaTest, ThreeKeywords) {
  Db db = Load(R"(<db>
    <r><name>alpha</name><state>texas</state><product>apparel</product></r>
    <r><name>beta</name><state>texas</state><product>food</product></r>
  </db>)");
  auto slca = ComputeSlcaIndexedLookupEager(
      db.doc, Lists(db, {"texas", "apparel", "r"}));
  ASSERT_EQ(slca.size(), 1u);
  EXPECT_EQ(db.doc.label_name(slca[0]), "r");
  // It is the first <r> (alpha).
  EXPECT_EQ(db.doc.text(db.doc.sole_text_child(db.doc.children(slca[0])[0])),
            "alpha");
}

TEST(RemoveAncestorsTest, KeepsDeepestAntichain) {
  Db db = Load("<a><b><c>x</c></b><d>y</d></a>");
  NodeId a = 0, b = 1, c = 2, d = 4;
  EXPECT_EQ(RemoveAncestors(db.doc, {a, b, c, d}),
            (std::vector<NodeId>{c, d}));
  EXPECT_EQ(RemoveAncestors(db.doc, {b, d}), (std::vector<NodeId>{b, d}));
  EXPECT_EQ(RemoveAncestors(db.doc, {a, a, b}), (std::vector<NodeId>{b}));
  EXPECT_TRUE(RemoveAncestors(db.doc, {}).empty());
}

// ---------------- property: ILE agrees with the counting oracle (TEST_P) --

struct SlcaCase {
  uint64_t seed;
  size_t num_keywords;
};

class SlcaAgreement : public ::testing::TestWithParam<SlcaCase> {};

TEST_P(SlcaAgreement, IleMatchesOracleOnRandomDocuments) {
  Rng rng(GetParam().seed);
  // Random document over a tiny value vocabulary so keywords co-occur.
  std::string xml;
  std::function<void(int)> gen = [&](int depth) {
    std::string tag = "t" + std::to_string(rng.Uniform(3));
    xml += "<" + tag + ">";
    size_t kids = depth > 0 ? rng.Uniform(4) : 0;
    for (size_t i = 0; i < kids; ++i) gen(depth - 1);
    if (kids == 0) {
      xml += "w" + std::to_string(rng.Uniform(4));
    }
    xml += "</" + tag + ">";
  };
  gen(5);
  Db db = Load(xml);

  // Use value keywords w0..w3 (and sometimes a tag token).
  std::vector<std::string> pool = {"w0", "w1", "w2", "w3", "t0", "t1"};
  std::vector<const PostingList*> lists;
  for (size_t i = 0; i < GetParam().num_keywords; ++i) {
    const PostingList* list = db.index.Find(pool[rng.Uniform(pool.size())]);
    if (list == nullptr) return;  // keyword absent in this random doc: skip
    lists.push_back(list);
  }

  auto ile = ComputeSlcaIndexedLookupEager(db.doc, lists);
  auto oracle = ComputeSlcaBySubtreeCounts(db.doc, lists);
  EXPECT_EQ(ile, oracle) << xml;
}

INSTANTIATE_TEST_SUITE_P(
    RandomDocs, SlcaAgreement,
    ::testing::Values(SlcaCase{1, 2}, SlcaCase{2, 2}, SlcaCase{3, 2},
                      SlcaCase{4, 3}, SlcaCase{5, 3}, SlcaCase{6, 3},
                      SlcaCase{7, 4}, SlcaCase{8, 4}, SlcaCase{9, 2},
                      SlcaCase{10, 3}, SlcaCase{11, 4}, SlcaCase{12, 2},
                      SlcaCase{13, 3}, SlcaCase{14, 2}, SlcaCase{15, 3},
                      SlcaCase{16, 4}, SlcaCase{17, 2}, SlcaCase{18, 3},
                      SlcaCase{19, 2}, SlcaCase{20, 3}));

}  // namespace
}  // namespace extract
