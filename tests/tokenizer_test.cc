#include "xml/tokenizer.h"

#include <gtest/gtest.h>

#include <vector>

namespace extract {
namespace {

// Drains the tokenizer, asserting no errors.
std::vector<XmlToken> Drain(std::string_view input) {
  XmlTokenizer tok(input);
  std::vector<XmlToken> out;
  for (;;) {
    auto t = tok.Next();
    EXPECT_TRUE(t.ok()) << t.status();
    if (!t.ok() || t->type == XmlTokenType::kEndOfInput) break;
    out.push_back(std::move(*t));
  }
  return out;
}

Status FirstError(std::string_view input) {
  XmlTokenizer tok(input);
  for (;;) {
    auto t = tok.Next();
    if (!t.ok()) return t.status();
    if (t->type == XmlTokenType::kEndOfInput) return Status::OK();
  }
}

TEST(TokenizerTest, SimpleElement) {
  auto tokens = Drain("<a>hi</a>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, XmlTokenType::kStartElement);
  EXPECT_EQ(tokens[0].name, "a");
  EXPECT_FALSE(tokens[0].self_closing);
  EXPECT_EQ(tokens[1].type, XmlTokenType::kText);
  EXPECT_EQ(tokens[1].content, "hi");
  EXPECT_EQ(tokens[2].type, XmlTokenType::kEndElement);
  EXPECT_EQ(tokens[2].name, "a");
}

TEST(TokenizerTest, SelfClosingElement) {
  auto tokens = Drain("<br/>");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].self_closing);
}

TEST(TokenizerTest, SelfClosingWithSpace) {
  auto tokens = Drain("<br />");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].self_closing);
}

TEST(TokenizerTest, Attributes) {
  auto tokens = Drain(R"(<store name="Levis" open='yes'/>)");
  ASSERT_EQ(tokens.size(), 1u);
  ASSERT_EQ(tokens[0].attributes.size(), 2u);
  EXPECT_EQ(tokens[0].attributes[0].name, "name");
  EXPECT_EQ(tokens[0].attributes[0].value, "Levis");
  EXPECT_EQ(tokens[0].attributes[1].name, "open");
  EXPECT_EQ(tokens[0].attributes[1].value, "yes");
}

TEST(TokenizerTest, AttributeEntitiesResolved) {
  auto tokens = Drain(R"(<a t="x &amp; y"/>)");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].attributes[0].value, "x & y");
}

TEST(TokenizerTest, TextEntitiesResolved) {
  auto tokens = Drain("<a>1 &lt; 2</a>");
  EXPECT_EQ(tokens[1].content, "1 < 2");
}

TEST(TokenizerTest, Comment) {
  auto tokens = Drain("<a><!-- note --></a>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, XmlTokenType::kComment);
  EXPECT_EQ(tokens[1].content, " note ");
}

TEST(TokenizerTest, CData) {
  auto tokens = Drain("<a><![CDATA[<raw> & stuff]]></a>");
  EXPECT_EQ(tokens[1].type, XmlTokenType::kCData);
  EXPECT_EQ(tokens[1].content, "<raw> & stuff");
}

TEST(TokenizerTest, ProcessingInstruction) {
  auto tokens = Drain("<?php echo 1; ?><a/>");
  EXPECT_EQ(tokens[0].type, XmlTokenType::kProcessingInstruction);
  EXPECT_EQ(tokens[0].name, "php");
  EXPECT_EQ(tokens[0].content, "echo 1; ");
}

TEST(TokenizerTest, XmlDeclaration) {
  auto tokens = Drain("<?xml version=\"1.0\"?><a/>");
  EXPECT_EQ(tokens[0].type, XmlTokenType::kXmlDeclaration);
}

TEST(TokenizerTest, DoctypeWithoutSubset) {
  auto tokens = Drain("<!DOCTYPE html><a/>");
  EXPECT_EQ(tokens[0].type, XmlTokenType::kDoctype);
  EXPECT_EQ(tokens[0].name, "html");
  EXPECT_EQ(tokens[0].content, "");
}

TEST(TokenizerTest, DoctypeWithInternalSubset) {
  auto tokens = Drain("<!DOCTYPE db [<!ELEMENT db (a*)>]><db/>");
  EXPECT_EQ(tokens[0].type, XmlTokenType::kDoctype);
  EXPECT_EQ(tokens[0].name, "db");
  EXPECT_EQ(tokens[0].content, "<!ELEMENT db (a*)>");
}

TEST(TokenizerTest, DoctypeSubsetMayContainComments) {
  auto tokens =
      Drain("<!DOCTYPE db [<!-- [not a subset end] --><!ELEMENT db (a)>]><db/>");
  EXPECT_EQ(tokens[0].content, "<!-- [not a subset end] --><!ELEMENT db (a)>");
}

TEST(TokenizerTest, DoctypeWithSystemLiteral) {
  auto tokens = Drain("<!DOCTYPE db SYSTEM \"db.dtd\"><db/>");
  EXPECT_EQ(tokens[0].type, XmlTokenType::kDoctype);
  EXPECT_EQ(tokens[0].name, "db");
}

TEST(TokenizerTest, TracksLineNumbers) {
  auto tokens = Drain("<a>\n  <b/>\n</a>");
  // <a>, text("\n  "), <b/>, text("\n"), </a>
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[2].line, 2);
  EXPECT_EQ(tokens[2].column, 3);
  EXPECT_EQ(tokens[4].line, 3);
}

TEST(TokenizerTest, NamesAllowColonDashDot) {
  auto tokens = Drain("<ns:a-b.c/>");
  EXPECT_EQ(tokens[0].name, "ns:a-b.c");
}

// ------------------------------------------------------------- error paths

TEST(TokenizerErrorTest, UnterminatedStartTag) {
  EXPECT_EQ(FirstError("<a foo").code(), StatusCode::kParseError);
}

TEST(TokenizerErrorTest, MissingAttributeValue) {
  EXPECT_EQ(FirstError("<a foo>").code(), StatusCode::kParseError);
  EXPECT_EQ(FirstError("<a foo=>").code(), StatusCode::kParseError);
  EXPECT_EQ(FirstError("<a foo=bar>").code(), StatusCode::kParseError);
}

TEST(TokenizerErrorTest, UnterminatedAttributeValue) {
  EXPECT_EQ(FirstError("<a foo=\"x>").code(), StatusCode::kParseError);
}

TEST(TokenizerErrorTest, LtInAttributeValue) {
  EXPECT_EQ(FirstError("<a foo=\"<\">").code(), StatusCode::kParseError);
}

TEST(TokenizerErrorTest, UnterminatedComment) {
  EXPECT_EQ(FirstError("<a><!-- oops</a>").code(), StatusCode::kParseError);
}

TEST(TokenizerErrorTest, UnterminatedCData) {
  EXPECT_EQ(FirstError("<a><![CDATA[x</a>").code(), StatusCode::kParseError);
}

TEST(TokenizerErrorTest, UnterminatedPi) {
  EXPECT_EQ(FirstError("<?php echo").code(), StatusCode::kParseError);
}

TEST(TokenizerErrorTest, UnterminatedDoctype) {
  EXPECT_EQ(FirstError("<!DOCTYPE db [<!ELEMENT db (a)>").code(),
            StatusCode::kParseError);
}

TEST(TokenizerErrorTest, BadMarkupDeclaration) {
  EXPECT_EQ(FirstError("<!BOGUS x>").code(), StatusCode::kParseError);
}

TEST(TokenizerErrorTest, BadEntityInText) {
  EXPECT_EQ(FirstError("<a>&bogus;</a>").code(), StatusCode::kParseError);
}

TEST(TokenizerErrorTest, ErrorMessagesIncludePosition) {
  Status s = FirstError("<a>\n<b foo></b></a>");
  EXPECT_NE(s.message().find("line 2"), std::string::npos) << s;
}

}  // namespace
}  // namespace extract
