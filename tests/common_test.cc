#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/tree_printer.h"

namespace extract {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kNotFound, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kUnimplemented}) {
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    EXTRACT_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------- Result --

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = []() -> Result<int> { return 7; };
  auto fail = []() -> Result<int> { return Status::Internal("x"); };
  auto use = [&](bool ok_path) -> Result<int> {
    int v;
    if (ok_path) {
      EXTRACT_ASSIGN_OR_RETURN(v, produce());
    } else {
      EXTRACT_ASSIGN_OR_RETURN(v, fail());
    }
    return v + 1;
  };
  EXPECT_EQ(use(true).value(), 8);
  EXPECT_EQ(use(false).status().code(), StatusCode::kInternal);
}

// ----------------------------------------------------------- string_util --

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLowerCopy("TeXaS 42"), "texas 42");
  EXPECT_EQ(ToLowerCopy(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimView("  a b  "), "a b");
  EXPECT_EQ(TrimView("\t\n"), "");
  EXPECT_EQ(TrimView("x"), "x");
}

TEST(StringUtilTest, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Texas", "tExAs"));
  EXPECT_FALSE(EqualsIgnoreCase("Texas", "Texan"));
  EXPECT_FALSE(EqualsIgnoreCase("ab", "abc"));
}

TEST(StringUtilTest, TokenizeWords) {
  EXPECT_EQ(TokenizeWords("Brook Brothers, apparel!"),
            (std::vector<std::string>{"brook", "brothers", "apparel"}));
  EXPECT_EQ(TokenizeWords("  "), (std::vector<std::string>{}));
  EXPECT_EQ(TokenizeWords("a1-b2"), (std::vector<std::string>{"a1", "b2"}));
}

TEST(StringUtilTest, ContainsToken) {
  EXPECT_TRUE(ContainsToken("Brook Brothers", "brook"));
  EXPECT_TRUE(ContainsToken("Brook Brothers", "brothers"));
  EXPECT_FALSE(ContainsToken("Brook Brothers", "bro"));  // not a full token
  EXPECT_FALSE(ContainsToken("Brook", "brothers"));
  EXPECT_TRUE(ContainsToken("retailer", "retailer"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.04159, 1), "3.0");
  EXPECT_EQ(FormatDouble(1.75, 2), "1.75");
}

// ---------------------------------------------------------------- random --

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto original = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfTest, RankZeroMostFrequent) {
  Rng rng(17);
  ZipfSampler zipf(10, 1.2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(&rng)]++;
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 20000);
}

TEST(ZipfTest, ZeroSkewIsRoughlyUniform) {
  Rng rng(23);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) counts[zipf.Sample(&rng)]++;
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(ZipfTest, SingleRankDomain) {
  Rng rng(3);
  ZipfSampler zipf(1, 2.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

// ---------------------------------------------------------- tree_printer --

TEST(TreePrinterTest, RendersNestedTree) {
  struct N {
    std::string label;
    std::vector<const N*> kids;
  };
  N leaf1{"b", {}}, leaf2{"c", {}};
  N root{"a", {&leaf1, &leaf2}};
  std::string out = RenderTree<const N*>(
      &root, [](const N* n) { return n->label; },
      [](const N* n) { return n->kids; });
  EXPECT_EQ(out, "a\n├── b\n└── c\n");
}

TEST(TreePrinterTest, RenderTableAligns) {
  std::string out = RenderTable({{"a", "bb"}, {"ccc", "d"}});
  EXPECT_EQ(out, "a    bb\nccc  d\n");
}

TEST(TreePrinterTest, EmptyTable) { EXPECT_EQ(RenderTable({}), ""); }

}  // namespace
}  // namespace extract
