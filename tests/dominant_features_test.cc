#include "snippet/dominant_features.h"

#include <gtest/gtest.h>

#include "datagen/retailer_dataset.h"
#include "search/search_engine.h"

namespace extract {
namespace {

// The feature statistics of the paper's Figure-1 query result. Label ids
// inside the returned statistics are not dereferenced by these tests (they
// assert on value strings), so the database itself is not kept.
FeatureStatistics PaperStats() {
  auto db = XmlDatabase::Load(GenerateRetailerXml());
  EXPECT_TRUE(db.ok()) << db.status();
  XSeekEngine engine;
  auto results = engine.Search(*db, Query::Parse("Texas apparel retailer"));
  EXPECT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);
  return FeatureStatistics::Compute(db->index(), db->classification(),
                                    results->front().root);
}

TEST(DominantFeaturesTest, PaperRankingOrder) {
  // §2.3: Houston(3.0) > outwear(2.2) > man(1.8) > casual(1.4) > suit(1.2)
  // > woman(1.1). Trivially dominant D==1 features (Texas, Brook Brothers,
  // apparel) score 1.0 and come after woman.
  FeatureStatistics stats = PaperStats();
  auto ranked = IdentifyDominantFeatures(stats, DominantFeatureOptions{});
  ASSERT_GE(ranked.size(), 6u);
  EXPECT_EQ(ranked[0].feature.value, "Houston");
  EXPECT_NEAR(ranked[0].score, 3.0, 1e-9);
  EXPECT_EQ(ranked[1].feature.value, "outwear");
  EXPECT_EQ(ranked[2].feature.value, "man");
  EXPECT_NEAR(ranked[2].score, 1.8, 1e-9);
  EXPECT_EQ(ranked[3].feature.value, "casual");
  EXPECT_EQ(ranked[4].feature.value, "suit");
  EXPECT_EQ(ranked[5].feature.value, "woman");
}

TEST(DominantFeaturesTest, NonDominantExcluded) {
  FeatureStatistics stats = PaperStats();
  auto ranked = IdentifyDominantFeatures(stats, DominantFeatureOptions{});
  for (const RankedFeature& rf : ranked) {
    EXPECT_NE(rf.feature.value, "children");
    EXPECT_NE(rf.feature.value, "formal");
    EXPECT_NE(rf.feature.value, "skirt");
    EXPECT_NE(rf.feature.value, "sweaters");
    EXPECT_NE(rf.feature.value, "Austin");
  }
}

TEST(DominantFeaturesTest, MaxFeaturesCaps) {
  FeatureStatistics stats = PaperStats();
  DominantFeatureOptions options;
  options.max_features = 3;
  auto ranked = IdentifyDominantFeatures(stats, options);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].feature.value, "Houston");
  EXPECT_EQ(ranked[2].feature.value, "man");
}

TEST(DominantFeaturesTest, RawCountRankingDiffersFromDominance) {
  // The paper's motivating point: by raw counts, casual(700) and man(600)
  // beat Houston(6); dominance normalization puts Houston first.
  FeatureStatistics stats = PaperStats();
  DominantFeatureOptions raw;
  raw.normalize = false;
  auto by_count = IdentifyDominantFeatures(stats, raw);
  ASSERT_GE(by_count.size(), 3u);
  EXPECT_EQ(by_count[0].feature.value, "casual");
  EXPECT_EQ(by_count[0].occurrences, 700u);
  EXPECT_EQ(by_count[1].feature.value, "man");
  // Houston is far down the raw-count ranking.
  size_t houston_rank = 0;
  for (size_t i = 0; i < by_count.size(); ++i) {
    if (by_count[i].feature.value == "Houston") houston_rank = i;
  }
  EXPECT_GT(houston_rank, 5u);
}

TEST(DominantFeaturesTest, RawCountIncludesNonDominant) {
  FeatureStatistics stats = PaperStats();
  DominantFeatureOptions raw;
  raw.normalize = false;
  auto by_count = IdentifyDominantFeatures(stats, raw);
  bool has_formal = false;
  for (const auto& rf : by_count) {
    if (rf.feature.value == "formal") has_formal = true;
  }
  EXPECT_TRUE(has_formal);
}

TEST(DominantFeaturesTest, DeterministicTieBreak) {
  auto db = XmlDatabase::Load(R"(<db>
    <s><c>b</c></s><s><c>b</c></s><s><c>a</c></s><s><c>a</c></s>
    <s><c>z</c></s>
  </db>)");
  ASSERT_TRUE(db.ok());
  FeatureStatistics stats = FeatureStatistics::Compute(
      db->index(), db->classification(), db->index().root());
  // a and b both have DS = 2/(5/3) = 1.2: tie broken lexicographically.
  auto ranked = IdentifyDominantFeatures(stats, DominantFeatureOptions{});
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].feature.value, "a");
  EXPECT_EQ(ranked[1].feature.value, "b");
}

TEST(DominantFeaturesTest, EmptyStatsYieldNothing) {
  auto db = XmlDatabase::Load("<a><b><c/></b></a>");
  ASSERT_TRUE(db.ok());
  FeatureStatistics stats = FeatureStatistics::Compute(
      db->index(), db->classification(), db->index().root());
  EXPECT_TRUE(IdentifyDominantFeatures(stats, DominantFeatureOptions{}).empty());
}

}  // namespace
}  // namespace extract
