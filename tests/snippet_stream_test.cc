// Semantics of the streaming serving core (snippet/snippet_stream.h):
//   * collected streams are byte-identical to the batch APIs (which are
//     themselves collectors — the golden snapshots pin the absolute bytes);
//   * completion-order and slot-order delivery carry identical per-slot
//     payloads (run under ThreadSanitizer in CI);
//   * cache hits are emitted before any miss computes;
//   * cancellation mid-stream resolves every unstarted slot immediately
//     and frees the pool for other work;
//   * a failing slot keeps the exact GenerateBatch error shape (lowest
//     failing index) when collected, and carries its raw status as an
//     event;
//   * deadlines expire unstarted slots with kDeadlineExceeded.

#include "snippet/snippet_stream.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"
#include "search/corpus.h"
#include "snippet/snippet_cache.h"
#include "snippet/snippet_service.h"
#include "xml/serializer.h"

namespace extract {
namespace {

struct Ctx {
  XmlDatabase db;
  Query query;
  std::vector<QueryResult> results;
};

Ctx RunQuery(std::string xml, const std::string& query_text) {
  auto db = XmlDatabase::Load(std::move(xml));
  EXPECT_TRUE(db.ok()) << db.status();
  Query query = Query::Parse(query_text);
  XSeekEngine engine;
  auto results = engine.Search(*db, query);
  EXPECT_TRUE(results.ok()) << results.status();
  return Ctx{std::move(*db), std::move(query), std::move(*results)};
}

void ExpectSnippetsIdentical(const Snippet& a, const Snippet& b) {
  EXPECT_EQ(a.result_root, b.result_root);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.covered, b.covered);
  EXPECT_EQ(a.key.value, b.key.value);
  EXPECT_EQ(a.ilist.ToString(), b.ilist.ToString());
  ASSERT_NE(a.tree, nullptr);
  ASSERT_NE(b.tree, nullptr);
  EXPECT_EQ(WriteXml(*a.tree), WriteXml(*b.tree));
}

/// A stage that blocks every pipeline run until opened — the deterministic
/// handle on "a slot is currently computing". Prepended to the default
/// sequence, so gated services still produce real snippets.
class GateStage : public SnippetStage {
 public:
  std::string_view name() const override { return "gate"; }

  Status Run(SnippetContext&, const SnippetOptions&,
             SnippetDraft&) const override {
    std::unique_lock<std::mutex> lock(mu_);
    ++arrived_;
    arrived_cv_.notify_all();
    open_cv_.wait(lock, [this] { return open_; });
    return Status::OK();
  }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    open_cv_.notify_all();
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = false;
  }

  /// Blocks until `n` pipeline runs have entered the gate.
  void AwaitArrivals(size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    arrived_cv_.wait(lock, [this, n] { return arrived_ >= n; });
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable arrived_cv_;
  mutable std::condition_variable open_cv_;
  mutable size_t arrived_ = 0;
  bool open_ = false;
};

/// A service whose pipeline blocks on the returned gate until Open().
std::pair<SnippetService, GateStage*> MakeGatedService(const XmlDatabase* db) {
  std::vector<std::unique_ptr<SnippetStage>> stages;
  auto gate = std::make_unique<GateStage>();
  GateStage* handle = gate.get();
  stages.push_back(std::move(gate));
  for (auto& stage : BuildDefaultStages()) stages.push_back(std::move(stage));
  return {SnippetService(db, std::move(stages)), handle};
}

TEST(SnippetStreamTest, CollectedStreamMatchesSequentialGeneration) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_GE(ctx.results.size(), 2u);
  SnippetService service(&ctx.db);
  SnippetOptions options;
  options.size_bound = 10;

  // The sequential reference: one Generate per result.
  SnippetContext ref_ctx(&ctx.db, ctx.query);
  std::vector<Snippet> reference;
  for (const QueryResult& result : ctx.results) {
    auto snippet = service.Generate(ref_ctx, result, options);
    ASSERT_TRUE(snippet.ok()) << snippet.status();
    reference.push_back(std::move(*snippet));
  }

  for (StreamOrder order : {StreamOrder::kCompletion, StreamOrder::kSlot}) {
    for (size_t threads : {1u, 2u, 4u}) {
      SnippetContext stream_ctx(&ctx.db, ctx.query);
      StreamOptions stream;
      stream.order = order;
      stream.num_threads = threads;
      ServingSession session =
          service.StreamBatch(stream_ctx, ctx.results, options, stream);
      auto collected = session.stream().Collect();
      ASSERT_TRUE(collected.ok()) << collected.status();
      ASSERT_EQ(collected->size(), reference.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        ExpectSnippetsIdentical((*collected)[i], reference[i]);
      }
      StreamStats stats = session.Stats();
      EXPECT_EQ(stats.succeeded, reference.size());
      EXPECT_EQ(stats.cancelled, 0u);
      EXPECT_GT(stats.first_snippet_ns, 0u);
    }
  }
}

TEST(SnippetStreamTest, SlotOrderDeliversSlotsInOrder) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_GE(ctx.results.size(), 2u);
  SnippetService service(&ctx.db);
  SnippetContext stream_ctx(&ctx.db, ctx.query);
  StreamOptions stream;
  stream.order = StreamOrder::kSlot;
  stream.num_threads = 4;
  ServingSession session =
      service.StreamBatch(stream_ctx, ctx.results, SnippetOptions{}, stream);
  size_t expected = 0;
  while (auto event = session.stream().Next()) {
    EXPECT_EQ(event->slot, expected);
    ++expected;
  }
  EXPECT_EQ(expected, ctx.results.size());
}

// The TSan target: both delivery orders, multi-threaded, multiple rounds —
// per-slot payloads must be identical however slots raced to completion.
TEST(SnippetStreamTest, CompletionOrderAndSlotOrderCarryIdenticalSlots) {
  Ctx ctx = RunQuery(GenerateRetailerXml(), "texas");
  ASSERT_GE(ctx.results.size(), 4u);
  SnippetService service(&ctx.db);
  SnippetOptions options;
  options.size_bound = 12;
  for (int round = 0; round < 3; ++round) {
    std::map<size_t, Snippet> by_completion;
    std::map<size_t, Snippet> by_slot;
    for (StreamOrder order : {StreamOrder::kCompletion, StreamOrder::kSlot}) {
      SnippetContext stream_ctx(&ctx.db, ctx.query);
      StreamOptions stream;
      stream.order = order;
      stream.num_threads = 4;
      ServingSession session =
          service.StreamBatch(stream_ctx, ctx.results, options, stream);
      auto& sink = order == StreamOrder::kCompletion ? by_completion : by_slot;
      session.stream().ForEach([&sink](SnippetEvent event) {
        ASSERT_TRUE(event.snippet.ok()) << event.snippet.status();
        sink.emplace(event.slot, std::move(event.snippet).value());
      });
    }
    ASSERT_EQ(by_completion.size(), ctx.results.size());
    ASSERT_EQ(by_slot.size(), ctx.results.size());
    for (size_t i = 0; i < ctx.results.size(); ++i) {
      ExpectSnippetsIdentical(by_completion.at(i), by_slot.at(i));
    }
  }
}

TEST(SnippetStreamTest, CacheHitsEmitBeforeAnyMissComputes) {
  Ctx ctx = RunQuery(GenerateRetailerXml(), "texas");
  ASSERT_GE(ctx.results.size(), 3u);
  auto [service, gate] = MakeGatedService(&ctx.db);
  SnippetCache cache;
  CachingSnippetService caching(&service, &cache, "retailer");
  SnippetOptions options;

  // Warm exactly one slot while the gate is open...
  gate->Open();
  const size_t warm_slot = 1;
  auto warmed = caching.Generate(ctx.query, ctx.results[warm_slot], options);
  ASSERT_TRUE(warmed.ok()) << warmed.status();

  // ...then close it: every miss now blocks inside the pipeline, so the
  // only event that can arrive first is the pre-emitted hit.
  gate->Close();
  StreamOptions stream;
  stream.num_threads = 2;
  ServingSession session =
      caching.StreamBatch(ctx.query, ctx.results, options, stream);
  EXPECT_GE(session.Stats().emitted, 1u) << "hit must be live at open";
  auto first = session.stream().Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->slot, warm_slot);
  ASSERT_TRUE(first->snippet.ok()) << first->snippet.status();
  ExpectSnippetsIdentical(*first->snippet, *warmed);

  gate->Open();
  size_t remaining = 0;
  session.stream().ForEach([&remaining](SnippetEvent event) {
    EXPECT_TRUE(event.snippet.ok()) << event.snippet.status();
    ++remaining;
  });
  EXPECT_EQ(remaining, ctx.results.size() - 1);
}

TEST(SnippetStreamTest, CancellationMidStreamResolvesUnstartedSlots) {
  Ctx ctx = RunQuery(GenerateRetailerXml(), "texas");
  ASSERT_GE(ctx.results.size(), 4u);
  auto [service, gate] = MakeGatedService(&ctx.db);
  SnippetContext stream_ctx(&ctx.db, ctx.query);
  StreamOptions stream;
  stream.num_threads = 2;  // exactly one pool producer + the consumer
  ServingSession session =
      service.StreamBatch(stream_ctx, ctx.results, SnippetOptions{}, stream);

  // The producer claims slot 0 and blocks inside the pipeline; cancelling
  // now must resolve every unstarted slot without waiting for the pool.
  gate->AwaitArrivals(1);
  session.Cancel();
  const size_t n = ctx.results.size();
  StreamStats stats = session.Stats();
  EXPECT_EQ(stats.cancelled, n - 1) << "unstarted slots resolve immediately";
  EXPECT_EQ(stats.succeeded, 0u);

  // The cancelled events are already consumable while slot 0 still blocks.
  for (size_t i = 0; i + 1 < n; ++i) {
    auto event = session.stream().Next();
    ASSERT_TRUE(event.has_value());
    EXPECT_FALSE(event->snippet.ok());
    EXPECT_EQ(event->snippet.status().code(), StatusCode::kCancelled);
  }

  // The in-flight slot finishes normally once unblocked.
  gate->Open();
  auto last = session.stream().Next();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->slot, 0u);
  EXPECT_TRUE(last->snippet.ok()) << last->snippet.status();
  EXPECT_FALSE(session.stream().Next().has_value());

  // The pool is free again: an unrelated parallel region completes.
  std::atomic<size_t> visited{0};
  ParallelFor(64, 2, [&visited](size_t) { visited.fetch_add(1); });
  EXPECT_EQ(visited.load(), 64u);
}

TEST(SnippetStreamTest, FailingSlotKeepsGenerateBatchErrorShape) {
  Ctx ctx = RunQuery(GenerateRetailerXml(), "texas");
  ASSERT_GE(ctx.results.size(), 3u);
  std::vector<QueryResult> results = ctx.results;
  const size_t bad = 1;
  results[bad].root = kInvalidNode;

  SnippetService service(&ctx.db);
  SnippetContext stream_ctx(&ctx.db, ctx.query);

  // Streamed: the event carries the slot's raw, undecorated status.
  StreamOptions stream;
  stream.num_threads = 1;
  {
    ServingSession session =
        service.StreamBatch(stream_ctx, results, SnippetOptions{}, stream);
    size_t failures = 0;
    session.stream().ForEach([&](SnippetEvent event) {
      if (event.snippet.ok()) return;
      ++failures;
      EXPECT_EQ(event.slot, bad);
      EXPECT_EQ(event.snippet.status().code(), StatusCode::kInvalidArgument);
      EXPECT_EQ(event.snippet.status().message(),
                "query result root is not a valid node");
    });
    EXPECT_EQ(failures, 1u);
  }

  // Collected: identical to the historical batch error, lowest failing
  // index, for every thread count.
  const Status expected = MakeBatchResultError(
      bad, results.size(), "",
      Status::InvalidArgument("query result root is not a valid node"));
  for (size_t threads : {1u, 4u}) {
    BatchOptions batch;
    batch.num_threads = threads;
    auto generated =
        service.GenerateBatch(stream_ctx, results, SnippetOptions{}, batch);
    ASSERT_FALSE(generated.ok());
    EXPECT_EQ(generated.status(), expected);
  }
}

/// A stage that throws on one specific result root — the containment case:
/// the library is exception-free, but a throw from a producer must become
/// an error event, not a terminated process (pool producer) or a wedged
/// stream (consumer-inline producer).
class ThrowingStage : public SnippetStage {
 public:
  explicit ThrowingStage(NodeId bad_root) : bad_root_(bad_root) {}
  std::string_view name() const override { return "throwing"; }
  Status Run(SnippetContext&, const SnippetOptions&,
             SnippetDraft& draft) const override {
    if (draft.result->root == bad_root_) {
      throw std::runtime_error("stage exploded");
    }
    return Status::OK();
  }

 private:
  NodeId bad_root_;
};

TEST(SnippetStreamTest, ThrowingProducerEmitsInternalErrorEvent) {
  Ctx ctx = RunQuery(GenerateRetailerXml(), "texas");
  ASSERT_GE(ctx.results.size(), 3u);
  const size_t bad = 1;
  std::vector<std::unique_ptr<SnippetStage>> stages;
  stages.push_back(std::make_unique<ThrowingStage>(ctx.results[bad].root));
  for (auto& stage : BuildDefaultStages()) stages.push_back(std::move(stage));
  SnippetService service(&ctx.db, std::move(stages));

  // Both producer paths: consumer-inline (threads=1) and pool workers.
  for (size_t threads : {1u, 4u}) {
    SnippetContext stream_ctx(&ctx.db, ctx.query);
    StreamOptions stream;
    stream.num_threads = threads;
    ServingSession session =
        service.StreamBatch(stream_ctx, ctx.results, SnippetOptions{}, stream);
    size_t ok = 0, internal = 0;
    session.stream().ForEach([&](SnippetEvent event) {
      if (event.snippet.ok()) {
        ++ok;
        return;
      }
      ++internal;
      EXPECT_EQ(event.slot, bad);
      EXPECT_EQ(event.snippet.status().code(), StatusCode::kInternal);
      EXPECT_NE(event.snippet.status().message().find("stage exploded"),
                std::string::npos);
    });
    EXPECT_EQ(ok, ctx.results.size() - 1) << "threads=" << threads;
    EXPECT_EQ(internal, 1u) << "threads=" << threads;
  }
}

TEST(SnippetStreamTest, DeadlineExpiresUnstartedSlots) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_GE(ctx.results.size(), 2u);
  SnippetService service(&ctx.db);
  SnippetContext stream_ctx(&ctx.db, ctx.query);
  StreamOptions stream;
  stream.num_threads = 1;  // lazy inline production: nothing starts early
  stream.deadline = std::chrono::nanoseconds(1);
  ServingSession session =
      service.StreamBatch(stream_ctx, ctx.results, SnippetOptions{}, stream);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  size_t expired = 0;
  session.stream().ForEach([&expired](SnippetEvent event) {
    ASSERT_FALSE(event.snippet.ok());
    EXPECT_EQ(event.snippet.status().code(), StatusCode::kDeadlineExceeded);
    ++expired;
  });
  EXPECT_EQ(expired, ctx.results.size());
  StreamStats stats = session.Stats();
  EXPECT_EQ(stats.deadline_expired, ctx.results.size());
  EXPECT_EQ(stats.succeeded, 0u);
  EXPECT_EQ(stats.first_snippet_ns, 0u);
}

TEST(SnippetStreamTest, ServeQueryStreamsTheRankedPage) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
  ASSERT_TRUE(corpus.AddDocument("retailer", GenerateRetailerXml()).ok());
  Query query = Query::Parse("texas");
  XSeekEngine engine;
  SnippetOptions options;
  options.size_bound = 10;

  // The batch reference page + snippets.
  auto page = corpus.SearchAll(query, engine);
  ASSERT_TRUE(page.ok()) << page.status();
  ASSERT_GE(page->size(), 4u);
  auto batch = corpus.GenerateSnippets(query, *page, options);
  ASSERT_TRUE(batch.ok()) << batch.status();

  auto served = corpus.ServeQuery(query, engine, options, StreamOptions{});
  ASSERT_TRUE(served.ok()) << served.status();
  ASSERT_EQ(served->page().size(), page->size());
  for (size_t i = 0; i < page->size(); ++i) {
    EXPECT_EQ(served->page()[i].document, (*page)[i].document);
    EXPECT_EQ(served->page()[i].result.root, (*page)[i].result.root);
    EXPECT_EQ(served->page()[i].score, (*page)[i].score);
  }
  std::map<size_t, Snippet> streamed;
  served->stream().ForEach([&streamed](SnippetEvent event) {
    ASSERT_TRUE(event.snippet.ok()) << event.snippet.status();
    streamed.emplace(event.slot, std::move(event.snippet).value());
  });
  ASSERT_EQ(streamed.size(), batch->size());
  for (size_t i = 0; i < batch->size(); ++i) {
    ExpectSnippetsIdentical(streamed.at(i), (*batch)[i]);
  }
}

TEST(SnippetStreamTest, WarmCacheStreamsEveryHitImmediately) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
  ASSERT_TRUE(corpus.AddDocument("retailer", GenerateRetailerXml()).ok());
  corpus.EnableSnippetCache();
  Query query = Query::Parse("texas");
  XSeekEngine engine;
  SnippetOptions options;

  auto page = corpus.SearchAll(query, engine);
  ASSERT_TRUE(page.ok()) << page.status();
  ASSERT_GE(page->size(), 4u);
  auto cold = corpus.GenerateSnippets(query, *page, options);
  ASSERT_TRUE(cold.ok()) << cold.status();

  auto served = corpus.ServeQuery(query, engine, options, StreamOptions{});
  ASSERT_TRUE(served.ok()) << served.status();
  // Fully warm: every slot is live before the first pull.
  StreamStats at_open = served->Stats();
  EXPECT_EQ(at_open.emitted, page->size());
  std::map<size_t, Snippet> streamed;
  served->stream().ForEach([&streamed](SnippetEvent event) {
    ASSERT_TRUE(event.snippet.ok()) << event.snippet.status();
    streamed.emplace(event.slot, std::move(event.snippet).value());
  });
  for (size_t i = 0; i < cold->size(); ++i) {
    ExpectSnippetsIdentical(streamed.at(i), (*cold)[i]);
  }
}

TEST(SnippetStreamTest, CollectAfterPartialConsumptionFails) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_GE(ctx.results.size(), 2u);
  SnippetService service(&ctx.db);
  SnippetContext stream_ctx(&ctx.db, ctx.query);
  ServingSession session = service.StreamBatch(stream_ctx, ctx.results,
                                               SnippetOptions{},
                                               StreamOptions{});
  ASSERT_TRUE(session.stream().Next().has_value());
  auto collected = session.stream().Collect();
  ASSERT_FALSE(collected.ok())
      << "Collect after Next must fail, not return empty slots";
  EXPECT_EQ(collected.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SnippetStreamTest, EmptyStreamIsExhaustedImmediately) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  SnippetService service(&ctx.db);
  SnippetContext stream_ctx(&ctx.db, ctx.query);
  std::vector<QueryResult> empty;
  ServingSession session =
      service.StreamBatch(stream_ctx, empty, SnippetOptions{}, StreamOptions{});
  EXPECT_FALSE(session.stream().Next().has_value());
  auto collected = session.stream().Collect();
  ASSERT_TRUE(collected.ok());
  EXPECT_TRUE(collected->empty());
}

TEST(SnippetStreamTest, MergeStreamStatsFoldsPseudoStages) {
  StreamStats stats;
  stats.total_slots = 8;
  stats.emitted = 8;
  stats.succeeded = 5;
  stats.failed = 1;
  stats.cancelled = 2;
  stats.first_snippet_ns = 1234;
  StageStatsRegistry registry;
  MergeStreamStats(stats, registry);
  std::map<std::string, StageStat> by_name;
  for (StageStat& stat : registry.Snapshot()) by_name[stat.name] = stat;
  EXPECT_EQ(by_name.at("stream.emitted").calls, 8u);
  EXPECT_EQ(by_name.at("stream.failed").calls, 1u);
  EXPECT_EQ(by_name.at("stream.cancelled").calls, 2u);
  EXPECT_EQ(by_name.at("stream.first_snippet").total_ns, 1234u);
  EXPECT_EQ(by_name.count("stream.deadline_expired"), 0u);
}

}  // namespace
}  // namespace extract
