// The partition grid is pure bookkeeping — but every partition-parallel
// path trusts it blindly, so its invariants (exact cover, ordering, clip
// correctness) get their own suite.

#include "index/index_partitions.h"

#include <gtest/gtest.h>

#include "datagen/random_xml.h"
#include "search/search_engine.h"

namespace extract {
namespace {

TEST(IndexPartitionsTest, DefaultIsSingleAllCoveringPartition) {
  IndexPartitions grid;
  EXPECT_EQ(grid.count(), 1u);
  EXPECT_EQ(grid.partition(0).begin, 0);
}

TEST(IndexPartitionsTest, BuildCoversAllNodesContiguously) {
  RandomXmlOptions options;
  options.levels = 2;
  options.entities_per_parent = 8;
  auto db = XmlDatabase::Load(GenerateRandomXml(options).xml);
  ASSERT_TRUE(db.ok()) << db.status();
  const IndexedDocument& doc = db->index();

  for (size_t target : {1u, 7u, 64u, 100000u}) {
    IndexPartitionOptions po;
    po.target_nodes_per_partition = target;
    po.max_partitions = 0;
    IndexPartitions grid = IndexPartitions::Build(doc, po);
    ASSERT_GE(grid.count(), 1u);
    EXPECT_EQ(grid.partition(0).begin, 0);
    EXPECT_EQ(grid.total_end(), static_cast<NodeId>(doc.num_nodes()));
    for (size_t p = 0; p < grid.count(); ++p) {
      EXPECT_FALSE(grid.partition(p).empty()) << "partition " << p;
      if (p > 0) {
        EXPECT_EQ(grid.partition(p - 1).end, grid.partition(p).begin);
      }
    }
    if (target >= doc.num_nodes()) EXPECT_EQ(grid.count(), 1u);
  }
}

TEST(IndexPartitionsTest, MaxPartitionsCapsTheCount) {
  RandomXmlOptions options;
  options.levels = 2;
  options.entities_per_parent = 8;
  auto db = XmlDatabase::Load(GenerateRandomXml(options).xml);
  ASSERT_TRUE(db.ok()) << db.status();

  IndexPartitionOptions po;
  po.target_nodes_per_partition = 1;  // would ask for one per node
  po.max_partitions = 5;
  IndexPartitions grid = IndexPartitions::Build(db->index(), po);
  EXPECT_EQ(grid.count(), 5u);
  EXPECT_EQ(grid.total_end(), static_cast<NodeId>(db->index().num_nodes()));
}

TEST(IndexPartitionsTest, ClipDecomposesIntervalsExactly) {
  RandomXmlOptions options;
  options.levels = 2;
  options.entities_per_parent = 8;
  auto db = XmlDatabase::Load(GenerateRandomXml(options).xml);
  ASSERT_TRUE(db.ok()) << db.status();
  const NodeId n = static_cast<NodeId>(db->index().num_nodes());

  IndexPartitionOptions po;
  po.target_nodes_per_partition = 10;
  po.max_partitions = 0;
  IndexPartitions grid = IndexPartitions::Build(db->index(), po);
  ASSERT_GT(grid.count(), 2u);

  // Every (begin, end) pair decomposes into contiguous non-empty slices
  // that concatenate back to [begin, end), each inside one partition.
  for (NodeId begin : {NodeId{0}, NodeId{1}, NodeId{n / 3}, NodeId{n - 1}}) {
    for (NodeId end : {begin, static_cast<NodeId>(begin + 1), n / 2, n}) {
      if (end < begin) continue;
      auto slices = grid.Clip(begin, end);
      if (begin == end) {
        EXPECT_TRUE(slices.empty());
        continue;
      }
      ASSERT_FALSE(slices.empty());
      EXPECT_EQ(slices.front().begin, begin);
      EXPECT_EQ(slices.back().end, end);
      for (size_t s = 0; s < slices.size(); ++s) {
        EXPECT_FALSE(slices[s].empty());
        if (s > 0) EXPECT_EQ(slices[s - 1].end, slices[s].begin);
      }
    }
  }

  // An interval inside one partition stays whole.
  NodeRange p1 = grid.partition(1);
  auto inside = grid.Clip(p1.begin, p1.end);
  ASSERT_EQ(inside.size(), 1u);
  EXPECT_EQ(inside[0].begin, p1.begin);
  EXPECT_EQ(inside[0].end, p1.end);
}

TEST(IndexPartitionsTest, DatabaseLoadBuildsGridPerOptions) {
  RandomXmlOptions options;
  options.levels = 2;
  options.entities_per_parent = 8;
  std::string xml = GenerateRandomXml(options).xml;

  // Default options: small document -> one partition (sequential layout).
  auto small = XmlDatabase::Load(xml);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->partitions().count(), 1u);

  LoadOptions load;
  load.partitioning.target_nodes_per_partition = 16;
  auto sharded = XmlDatabase::Load(xml, load);
  ASSERT_TRUE(sharded.ok());
  EXPECT_GT(sharded->partitions().count(), 1u);
  EXPECT_EQ(sharded->partitions().total_end(),
            static_cast<NodeId>(sharded->index().num_nodes()));
}

}  // namespace
}  // namespace extract
