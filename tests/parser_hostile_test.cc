// Hostile-input hardening of the XML front door (ISSUE: failure domain A).
//
// Every attack here must come back as a precise Status — kResourceExhausted
// for resource bombs, kParseError/kInvalidArgument for malformed bytes —
// never a crash, a hang, or memory proportional to the attack instead of
// the configured limit. The memory claims are enforced structurally (the
// tokenizer checks caps before copying; see CheckTokenBytes) and probed
// here by running far-over-cap inputs under the default limits.

#include <string>

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/tokenizer.h"

namespace extract {
namespace {

std::string NestingBomb(size_t depth) {
  std::string xml;
  xml.reserve(depth * 8);
  for (size_t i = 0; i < depth; ++i) xml += "<n>";
  for (size_t i = 0; i < depth; ++i) xml += "</n>";
  return xml;
}

TEST(ParserHostileTest, DeepNestingBombIsRejected) {
  auto parsed = ParseXml(NestingBomb(100000));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(parsed.status().message().find("max_depth"), std::string::npos)
      << parsed.status();
}

TEST(ParserHostileTest, DepthExactlyAtLimitParses) {
  XmlParseOptions options;
  options.limits.max_depth = 64;
  EXPECT_TRUE(ParseXml(NestingBomb(64), options).ok());
  auto over = ParseXml(NestingBomb(65), options);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParserHostileTest, MegabyteAttributeIsRejected) {
  XmlParseOptions options;
  options.limits.max_token_bytes = 1 << 20;
  // 4 MiB attribute value against a 1 MiB token cap. The tokenizer must
  // reject after scanning, BEFORE copying the value out.
  std::string xml = "<a v=\"" + std::string(4u << 20, 'x') + "\"/>";
  auto parsed = ParseXml(xml, options);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(parsed.status().message().find("max_token_bytes"),
            std::string::npos)
      << parsed.status();
}

TEST(ParserHostileTest, MegabyteTextIsRejected) {
  XmlParseOptions options;
  options.limits.max_token_bytes = 1 << 16;
  std::string xml = "<a>" + std::string(1u << 20, 'y') + "</a>";
  auto parsed = ParseXml(xml, options);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParserHostileTest, MegabyteCommentAndCDataAreRejected) {
  XmlParseOptions options;
  options.limits.max_token_bytes = 1 << 12;
  options.keep_comments = true;
  std::string comment =
      "<a><!--" + std::string(1u << 16, 'c') + "--></a>";
  auto parsed = ParseXml(comment, options);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);

  std::string cdata =
      "<a><![CDATA[" + std::string(1u << 16, 'd') + "]]></a>";
  parsed = ParseXml(cdata, options);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParserHostileTest, EntityFloodIsRejected) {
  XmlParseOptions options;
  options.limits.max_entity_expansions = 1000;
  std::string xml = "<a>";
  for (int i = 0; i < 2000; ++i) xml += "&amp;";
  xml += "</a>";
  auto parsed = ParseXml(xml, options);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(parsed.status().message().find("entity expansion cap"),
            std::string::npos)
      << parsed.status();
}

TEST(ParserHostileTest, EntityFloodAcrossAttributesIsRejected) {
  XmlParseOptions options;
  options.limits.max_entity_expansions = 100;
  std::string xml = "<a";
  for (int i = 0; i < 64; ++i) {
    xml += " k" + std::to_string(i) + "=\"&lt;&gt;&amp;\"";
  }
  xml += "/>";
  auto parsed = ParseXml(xml, options);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParserHostileTest, NodeCountBombIsRejected) {
  XmlParseOptions options;
  options.limits.max_total_nodes = 1000;
  std::string xml = "<a>";
  for (int i = 0; i < 2000; ++i) xml += "<b/>";
  xml += "</a>";
  auto parsed = ParseXml(xml, options);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(parsed.status().message().find("max_total_nodes"),
            std::string::npos)
      << parsed.status();
}

TEST(ParserHostileTest, NodeCountExactlyAtLimitParses) {
  XmlParseOptions options;
  options.limits.max_total_nodes = 101;  // root + 100 children
  std::string xml = "<a>";
  for (int i = 0; i < 100; ++i) xml += "<b/>";
  xml += "</a>";
  EXPECT_TRUE(ParseXml(xml, options).ok());
}

TEST(ParserHostileTest, UnknownEntityIsStillParseError) {
  // Entity *counting* must not reclassify the existing malformed-entity
  // error: an undefined entity is a parse error, not resource exhaustion.
  auto parsed = ParseXml("<a>&bogus;</a>");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(ParserHostileTest, ZeroDisablesEveryCap) {
  XmlParseOptions options;
  options.limits.max_depth = 0;
  options.limits.max_token_bytes = 0;
  options.limits.max_total_nodes = 0;
  options.limits.max_entity_expansions = 0;
  std::string xml = NestingBomb(2000);
  EXPECT_TRUE(ParseXml(xml, options).ok());
}

TEST(ParserHostileTest, DoctypeInternalSubsetBombIsRejected) {
  XmlParseOptions options;
  options.limits.max_token_bytes = 1 << 12;
  std::string xml = "<!DOCTYPE a [" + std::string(1u << 16, ' ') + "]><a/>";
  auto parsed = ParseXml(xml, options);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParserHostileTest, ErrorsCarryLineInformation) {
  XmlParseOptions options;
  options.limits.max_depth = 4;
  auto parsed = ParseXml("<a>\n<b>\n<c>\n<d>\n<e/>\n</d></c></b></a>", options);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line"), std::string::npos)
      << parsed.status();
}

}  // namespace
}  // namespace extract
