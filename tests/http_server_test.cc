// Byte-equivalence of the HTTP frontier: JSON and SSE responses must
// decode to exactly the snippets / error shapes ServeQuery produces
// in-process. The wire adds framing, never content — document names and
// renders compare as strings, scores compare with operator== (the JSON
// writer emits round-tripping doubles).

#include "http/http_server.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "datagen/movies_dataset.h"
#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"
#include "http/json.h"
#include "http/query_endpoints.h"
#include "http_test_util.h"
#include "search/corpus.h"
#include "xml/serializer.h"

namespace extract {
namespace {

using testing::Get;
using testing::HttpResponse;
using testing::ParseSseBody;
using testing::SseEvent;
using testing::UrlEncode;

/// What one served slot must decode to, computed from an in-process
/// ServeQuery run with the same options the server uses.
struct ExpectedSlot {
  bool ok = false;
  std::string document;
  double score = 0.0;
  bool has_key = false;
  std::string key;
  size_t edges = 0;
  std::string xml;
  std::string tree;
  std::string coverage;
  std::string status;  ///< error slots: the code name
};

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(corpus_.AddDocument("retailer", GenerateRetailerXml()).ok());
    ASSERT_TRUE(corpus_.AddDocument("stores", GenerateStoresXml()).ok());
    ASSERT_TRUE(corpus_.AddDocument("movies", GenerateMoviesXml()).ok());
    corpus_.EnableSnippetCache();

    HttpServerOptions options;
    options.admission.max_concurrent = 4;
    options.admission.max_queue = 8;
    server_ = std::make_unique<HttpServer>(options);
    service_ = std::make_unique<QueryService>(&corpus_, &engine_,
                                              QueryServiceOptions{});
    service_->Register(server_.get());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  /// Serves `text` in-process with the server's exact options and returns
  /// the expected decode of every slot, keyed by slot id.
  std::map<size_t, ExpectedSlot> ServeInProcess(const std::string& text,
                                                size_t page_size,
                                                bool gated) {
    QueryServiceOptions defaults;
    CorpusServingOptions serving = defaults.serving;
    serving.page_size = gated ? page_size : 0;
    StreamOptions stream_options;
    stream_options.num_threads = defaults.stream_threads;
    auto served =
        corpus_.ServeQuery(Query::Parse(text), engine_, defaults.ranking,
                           serving, defaults.snippet, stream_options);
    EXPECT_TRUE(served.ok()) << served.status();
    std::map<size_t, ExpectedSlot> slots;
    if (!served.ok()) return slots;
    while (auto event = served->stream().Next()) {
      ExpectedSlot expected;
      expected.ok = event->snippet.ok();
      if (expected.ok) {
        const CorpusResult& hit = served->page()[event->slot];
        const Snippet& snippet = *event->snippet;
        expected.document = hit.document;
        expected.score = hit.score;
        expected.has_key = snippet.key.found();
        expected.key = snippet.key.value;
        expected.edges = snippet.edges();
        expected.xml = snippet.tree ? WriteXml(*snippet.tree) : "";
        expected.tree = RenderSnippet(snippet);
        expected.coverage = RenderCoverage(snippet);
      } else {
        expected.status =
            std::string(StatusCodeToString(event->snippet.status().code()));
      }
      slots[event->slot] = std::move(expected);
    }
    return slots;
  }

  /// Asserts one decoded slot object matches its in-process twin exactly.
  void ExpectSlotMatches(const JsonValue& decoded,
                         const std::map<size_t, ExpectedSlot>& expected) {
    ASSERT_TRUE(decoded.is_object());
    const JsonValue* slot = decoded.Find("slot");
    ASSERT_NE(slot, nullptr);
    auto it = expected.find(static_cast<size_t>(slot->number_value));
    ASSERT_NE(it, expected.end())
        << "slot " << slot->number_value << " not served in-process";
    const ExpectedSlot& want = it->second;
    if (want.ok) {
      ASSERT_NE(decoded.Find("document"), nullptr);
      EXPECT_EQ(decoded.Find("document")->string_value, want.document);
      // operator== on the doubles: to_chars + strtod round-trips exactly.
      ASSERT_NE(decoded.Find("score"), nullptr);
      EXPECT_EQ(decoded.Find("score")->number_value, want.score);
      ASSERT_NE(decoded.Find("key"), nullptr);
      if (want.has_key) {
        EXPECT_EQ(decoded.Find("key")->string_value, want.key);
      } else {
        EXPECT_TRUE(decoded.Find("key")->is_null());
      }
      ASSERT_NE(decoded.Find("edges"), nullptr);
      EXPECT_EQ(static_cast<size_t>(decoded.Find("edges")->number_value),
                want.edges);
      ASSERT_NE(decoded.Find("xml"), nullptr);
      EXPECT_EQ(decoded.Find("xml")->string_value, want.xml);
      ASSERT_NE(decoded.Find("tree"), nullptr);
      EXPECT_EQ(decoded.Find("tree")->string_value, want.tree);
      ASSERT_NE(decoded.Find("coverage"), nullptr);
      EXPECT_EQ(decoded.Find("coverage")->string_value, want.coverage);
      EXPECT_EQ(decoded.Find("status"), nullptr);
    } else {
      EXPECT_EQ(decoded.Find("document"), nullptr);
      EXPECT_EQ(decoded.Find("score"), nullptr);
      ASSERT_NE(decoded.Find("status"), nullptr);
      EXPECT_EQ(decoded.Find("status")->string_value, want.status);
      ASSERT_NE(decoded.Find("message"), nullptr);
    }
  }

  XmlCorpus corpus_;
  XSeekEngine engine_;
  std::unique_ptr<HttpServer> server_;
  std::unique_ptr<QueryService> service_;
};

TEST_F(HttpServerTest, Healthz) {
  HttpResponse response = Get(server_->port(), "/healthz");
  ASSERT_TRUE(response.valid);
  EXPECT_EQ(response.status, 200);
  auto decoded = JsonValue::Parse(response.body);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->Find("status")->string_value, "ok");
  EXPECT_EQ(decoded->Find("documents")->number_value, 3.0);
}

TEST_F(HttpServerTest, JsonPageMatchesInProcessServing) {
  const std::string text = "Texas, apparel, retailer";
  auto expected = ServeInProcess(text, 0, /*gated=*/false);
  ASSERT_FALSE(expected.empty());

  HttpResponse response = Get(
      server_->port(), "/query?q=" + UrlEncode(text) + "&gated=0&mode=json");
  ASSERT_TRUE(response.valid);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.headers["content-type"], "application/json");

  auto decoded = JsonValue::Parse(response.body);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->Find("query")->string_value, text);
  const JsonValue* results = decoded->Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_TRUE(results->is_array());
  ASSERT_EQ(results->array_items.size(), expected.size());
  for (size_t i = 0; i < results->array_items.size(); ++i) {
    // JSON pages are slot-ordered.
    EXPECT_EQ(results->array_items[i].Find("slot")->number_value,
              static_cast<double>(i));
    ExpectSlotMatches(results->array_items[i], expected);
  }
  const JsonValue* stats = decoded->Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->Find("stream")->Find("emitted")->number_value,
            static_cast<double>(expected.size()));
  EXPECT_EQ(stats->Find("stream")->Find("failed")->number_value, 0.0);
}

TEST_F(HttpServerTest, SsePageMatchesInProcessServing) {
  const std::string text = "Texas, apparel, retailer";
  auto expected = ServeInProcess(text, 0, /*gated=*/false);
  ASSERT_FALSE(expected.empty());

  HttpResponse response =
      Get(server_->port(),
          "/query?q=" + UrlEncode(text) + "&gated=0&mode=sse&order=slot");
  ASSERT_TRUE(response.valid);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.headers["content-type"], "text/event-stream");
  EXPECT_EQ(response.headers["transfer-encoding"], "chunked");

  std::vector<SseEvent> events = ParseSseBody(response.body);
  ASSERT_EQ(events.size(), expected.size() + 1);  // slots + done
  for (size_t i = 0; i + 1 < events.size(); ++i) {
    EXPECT_EQ(events[i].event, "snippet");
    EXPECT_EQ(events[i].id, std::to_string(i));  // order=slot
    auto decoded = JsonValue::Parse(events[i].data);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ExpectSlotMatches(*decoded, expected);
  }
  EXPECT_EQ(events.back().event, "done");
  auto done = JsonValue::Parse(events.back().data);
  ASSERT_TRUE(done.ok()) << done.status();
  EXPECT_EQ(done->Find("stream")->Find("succeeded")->number_value,
            static_cast<double>(expected.size()));
}

TEST_F(HttpServerTest, JsonAndSseRenderingsAgreePerSlot) {
  const std::string target = "/query?q=" + UrlEncode("texas store") +
                             "&gated=0";
  HttpResponse json = Get(server_->port(), target + "&mode=json");
  HttpResponse sse =
      Get(server_->port(), target + "&mode=sse&order=slot");
  ASSERT_TRUE(json.valid);
  ASSERT_TRUE(sse.valid);

  auto page = JsonValue::Parse(json.body);
  ASSERT_TRUE(page.ok());
  const JsonValue* results = page->Find("results");
  ASSERT_NE(results, nullptr);
  std::vector<SseEvent> events = ParseSseBody(sse.body);
  ASSERT_EQ(events.size(), results->array_items.size() + 1);
  // The two renderings share one serializer: the SSE data payload is the
  // byte-identical JSON page entry.
  for (size_t i = 0; i + 1 < events.size(); ++i) {
    auto sse_decoded = JsonValue::Parse(events[i].data);
    ASSERT_TRUE(sse_decoded.ok());
    const JsonValue& entry = results->array_items[i];
    ASSERT_EQ(entry.object_items.size(), sse_decoded->object_items.size());
    for (size_t f = 0; f < entry.object_items.size(); ++f) {
      EXPECT_EQ(entry.object_items[f].first,
                sse_decoded->object_items[f].first);
      EXPECT_EQ(entry.object_items[f].second.type,
                sse_decoded->object_items[f].second.type);
      EXPECT_EQ(entry.object_items[f].second.string_value,
                sse_decoded->object_items[f].second.string_value);
      EXPECT_EQ(entry.object_items[f].second.number_value,
                sse_decoded->object_items[f].second.number_value);
    }
  }
}

TEST_F(HttpServerTest, GatedTopKPageMatchesInProcessServing) {
  const std::string text = "texas";
  const size_t k = 3;
  auto expected = ServeInProcess(text, k, /*gated=*/true);
  ASSERT_EQ(expected.size(), k);

  HttpResponse response =
      Get(server_->port(), "/query?q=" + UrlEncode(text) +
                               "&page_size=3&gated=1&mode=json");
  ASSERT_TRUE(response.valid);
  EXPECT_EQ(response.status, 200);
  auto decoded = JsonValue::Parse(response.body);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const JsonValue* results = decoded->Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array_items.size(), k);
  for (const JsonValue& entry : results->array_items) {
    ExpectSlotMatches(entry, expected);
  }
  // The incremental search's counters ride along.
  const JsonValue* search = decoded->Find("stats")->Find("search");
  ASSERT_NE(search, nullptr);
  EXPECT_EQ(search->Find("results_released")->number_value,
            static_cast<double>(k));
  EXPECT_TRUE(search->Find("finished")->bool_value);

  // The gated page is byte-identical to the blocking page's first k slots.
  auto blocking = ServeInProcess(text, 0, /*gated=*/false);
  for (size_t i = 0; i < k; ++i) {
    EXPECT_EQ(expected[i].document, blocking[i].document);
    EXPECT_EQ(expected[i].score, blocking[i].score);
    EXPECT_EQ(expected[i].xml, blocking[i].xml);
  }
}

TEST_F(HttpServerTest, WarmCacheServesIdenticalPage) {
  const std::string target =
      "/query?q=" + UrlEncode("Texas, apparel") + "&gated=0&mode=json";
  HttpResponse cold = Get(server_->port(), target);
  ASSERT_TRUE(cold.valid);
  ASSERT_EQ(cold.status, 200);
  HttpResponse warm = Get(server_->port(), target);
  ASSERT_TRUE(warm.valid);
  ASSERT_EQ(warm.status, 200);

  // Timing stats differ between runs; the results array must not. Compare
  // the raw bytes of the "results" member (both runs serialize through the
  // same writer, so equal content means equal bytes).
  auto results_bytes = [](const std::string& body) {
    size_t begin = body.find("\"results\":");
    size_t end = body.find(",\"stats\":");
    EXPECT_NE(begin, std::string::npos);
    EXPECT_NE(end, std::string::npos);
    return body.substr(begin, end - begin);
  };
  EXPECT_EQ(results_bytes(cold.body), results_bytes(warm.body));

  // And the cache actually served: its hit counter moved.
  EXPECT_GT(corpus_.snippet_cache()->Stats().hits, 0u);
}

TEST_F(HttpServerTest, ErrorResponsesAreWellFormedJson) {
  struct Case {
    std::string target;
    int status;
    std::string code;
  };
  const Case cases[] = {
      {"/query", 400, "InvalidArgument"},                  // missing q
      {"/query?q=", 400, "InvalidArgument"},               // empty q
      {"/query?q=%2C%2C", 400, "InvalidArgument"},         // no keywords
      {"/query?q=texas&page_size=0", 400, "InvalidArgument"},
      {"/query?q=texas&page_size=abc", 400, "InvalidArgument"},
      {"/query?q=texas&deadline_ms=abc", 400, "InvalidArgument"},
      {"/query?q=texas&mode=xml", 400, "InvalidArgument"},
      {"/query?q=texas&order=rank", 400, "InvalidArgument"},
      {"/query?q=texas&gated=2", 400, "InvalidArgument"},
      {"/nope", 404, "NotFound"},
  };
  for (const Case& c : cases) {
    HttpResponse response = Get(server_->port(), c.target);
    ASSERT_TRUE(response.valid) << c.target;
    EXPECT_EQ(response.status, c.status) << c.target;
    auto decoded = JsonValue::Parse(response.body);
    ASSERT_TRUE(decoded.ok()) << c.target << ": " << decoded.status();
    EXPECT_EQ(decoded->Find("status")->string_value, c.code) << c.target;
    ASSERT_NE(decoded->Find("message"), nullptr) << c.target;
  }
}

TEST_F(HttpServerTest, MethodNotAllowed) {
  HttpResponse response = testing::Fetch(
      server_->port(), "POST /query HTTP/1.1\r\nHost: t\r\n\r\n");
  ASSERT_TRUE(response.valid);
  EXPECT_EQ(response.status, 405);
}

TEST_F(HttpServerTest, HeadSuppressesBody) {
  HttpResponse response = testing::Fetch(
      server_->port(), "HEAD /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  ASSERT_TRUE(response.valid);
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(response.body.empty());
  EXPECT_NE(response.headers["content-length"], "0");
}

TEST_F(HttpServerTest, StatsEndpointReportsServingCounters) {
  // Serve twice (one cold, one warm) so every counter family has moved.
  const std::string target =
      "/query?q=" + UrlEncode("texas") + "&page_size=2&mode=json";
  ASSERT_EQ(Get(server_->port(), target).status, 200);
  ASSERT_EQ(Get(server_->port(), target).status, 200);

  HttpResponse response = Get(server_->port(), "/stats");
  ASSERT_TRUE(response.valid);
  EXPECT_EQ(response.status, 200);
  auto decoded = JsonValue::Parse(response.body);
  ASSERT_TRUE(decoded.ok()) << decoded.status();

  const JsonValue* server = decoded->Find("server");
  ASSERT_NE(server, nullptr);
  EXPECT_GE(server->Find("requests_parsed")->number_value, 2.0);
  EXPECT_GE(server->Find("responses_2xx")->number_value, 2.0);

  const JsonValue* admission = decoded->Find("admission");
  ASSERT_NE(admission, nullptr);
  EXPECT_GE(admission->Find("admitted")->number_value, 2.0);
  EXPECT_EQ(admission->Find("active")->number_value, 0.0);

  // Stage + stream + top-k search counters from the registry.
  const JsonValue* stages = decoded->Find("stages");
  ASSERT_NE(stages, nullptr);
  bool saw_search = false, saw_stream = false;
  for (const JsonValue& stage : stages->array_items) {
    const std::string& name = stage.Find("name")->string_value;
    if (name == "search") saw_search = true;
    if (name == "stream.emitted") saw_stream = true;
  }
  EXPECT_TRUE(saw_search);
  EXPECT_TRUE(saw_stream);

  const JsonValue* cache = decoded->Find("cache");
  ASSERT_NE(cache, nullptr);
  ASSERT_TRUE(cache->is_object());
  EXPECT_GT(cache->Find("hits")->number_value, 0.0);
}

TEST_F(HttpServerTest, DeadlineSlotsDecodeAsDeadlineExceeded) {
  // Burn the whole budget before serving: admission admits instantly (no
  // load), but the remaining stream deadline is ~0, so slots that have not
  // started emit kDeadlineExceeded — delivered as well-formed error events,
  // not a broken response.
  HttpResponse response =
      Get(server_->port(),
          "/query?q=" + UrlEncode("texas") + "&deadline_ms=1&mode=json");
  ASSERT_TRUE(response.valid);
  EXPECT_EQ(response.status, 200);
  auto decoded = JsonValue::Parse(response.body);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  for (const JsonValue& entry : decoded->Find("results")->array_items) {
    const JsonValue* status = entry.Find("status");
    if (status != nullptr) {
      EXPECT_EQ(status->string_value, "DeadlineExceeded");
      ASSERT_NE(entry.Find("message"), nullptr);
      EXPECT_EQ(entry.Find("document"), nullptr);
    } else {
      ASSERT_NE(entry.Find("document"), nullptr);  // fast slot: completed
    }
  }
}

}  // namespace
}  // namespace extract
