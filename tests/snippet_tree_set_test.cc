// Pins SnippetTreeSet semantics across the hot-path rewrite: the
// epoch-stamped flat-array implementation must behave exactly like the
// original unordered_set-based tree set (kept here as the reference model)
// for every operation the selectors perform — ConnectCost, Commit,
// Contains, SortedMembers — plus the Mark/RollbackTo undo log that replaced
// whole-tree copies in the exact solver, and the epoch-based Reset that
// lets one set be reused across selections.

#include "snippet/snippet_tree_set.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "search/search_engine.h"

namespace extract {
namespace {

// The pre-rewrite implementation, verbatim: the reference model.
class ReferenceTreeSet {
 public:
  ReferenceTreeSet(const IndexedDocument& doc, NodeId root)
      : doc_(&doc), root_(root) {
    members_.insert(root);
  }

  size_t ConnectCost(NodeId n, std::vector<NodeId>* path) const {
    path->clear();
    NodeId cur = n;
    while (members_.find(cur) == members_.end()) {
      path->push_back(cur);
      cur = doc_->parent(cur);
    }
    return path->size();
  }

  void Commit(const std::vector<NodeId>& path) {
    members_.insert(path.begin(), path.end());
  }

  bool Contains(NodeId n) const { return members_.count(n) > 0; }

  std::vector<NodeId> SortedMembers() const {
    std::vector<NodeId> out(members_.begin(), members_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  size_t edges() const { return members_.size() - 1; }

 private:
  const IndexedDocument* doc_;
  NodeId root_;
  std::unordered_set<NodeId> members_;
};

XmlDatabase RandomTree(uint64_t seed) {
  Rng rng(seed);
  std::string xml;
  std::function<void(int)> gen = [&](int depth) {
    std::string tag = "t" + std::to_string(rng.Uniform(4));
    xml += "<" + tag + ">";
    size_t kids = depth > 0 ? rng.Uniform(3) + (depth > 2 ? 1 : 0) : 0;
    for (size_t i = 0; i < kids; ++i) gen(depth - 1);
    if (kids == 0) xml += "v" + std::to_string(rng.Uniform(6));
    xml += "</" + tag + ">";
  };
  gen(5);
  auto db = XmlDatabase::Load(xml);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(*db);
}

void ExpectSameState(const ReferenceTreeSet& reference,
                     const SnippetTreeSet& actual, const std::string& label) {
  EXPECT_EQ(reference.edges(), actual.edges()) << label;
  EXPECT_EQ(reference.SortedMembers(), actual.SortedMembers()) << label;
}

TEST(SnippetTreeSetTest, MatchesReferenceOnRandomizedOperations) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    XmlDatabase db = RandomTree(seed);
    const IndexedDocument& doc = db.index();
    Rng rng(seed * 977);
    const NodeId root = 0;
    ReferenceTreeSet reference(doc, root);
    SnippetTreeSet actual(doc, root);

    std::vector<NodeId> ref_path, actual_path;
    for (int op = 0; op < 200; ++op) {
      NodeId n = static_cast<NodeId>(rng.Uniform(doc.num_nodes()));
      EXPECT_EQ(reference.Contains(n), actual.Contains(n)) << "node " << n;
      size_t ref_cost = reference.ConnectCost(n, &ref_path);
      size_t actual_cost = actual.ConnectCost(n, &actual_path);
      EXPECT_EQ(ref_cost, actual_cost) << "node " << n;
      EXPECT_EQ(ref_path, actual_path) << "node " << n;
      if (rng.Uniform(2) == 0) {
        reference.Commit(ref_path);
        actual.Commit(actual_path);
      }
      if (op % 17 == 0) {
        ExpectSameState(reference, actual,
                        "seed " + std::to_string(seed) + " op " +
                            std::to_string(op));
      }
    }
    ExpectSameState(reference, actual, "seed " + std::to_string(seed));
  }
}

TEST(SnippetTreeSetTest, RollbackRestoresTheMarkedState) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    XmlDatabase db = RandomTree(seed);
    const IndexedDocument& doc = db.index();
    Rng rng(seed * 31 + 7);
    SnippetTreeSet tree(doc, 0);
    std::vector<NodeId> path;

    // Grow a base tree.
    for (int i = 0; i < 5; ++i) {
      tree.ConnectCost(static_cast<NodeId>(rng.Uniform(doc.num_nodes())),
                       &path);
      tree.Commit(path);
    }
    const std::vector<NodeId> base_members = tree.SortedMembers();
    const size_t base_edges = tree.edges();

    // Branch-and-bound style: speculatively commit a few paths (nested
    // marks), then unwind, exactly as the exact solver backtracks.
    const size_t outer = tree.Mark();
    for (int branch = 0; branch < 8; ++branch) {
      const size_t mark = tree.Mark();
      for (int i = 0; i < 3; ++i) {
        tree.ConnectCost(static_cast<NodeId>(rng.Uniform(doc.num_nodes())),
                         &path);
        tree.Commit(path);
      }
      tree.RollbackTo(mark);
    }
    tree.RollbackTo(outer);  // no-op: nothing outstanding
    EXPECT_EQ(tree.SortedMembers(), base_members);
    EXPECT_EQ(tree.edges(), base_edges);

    // After rollback the set must still behave correctly (stamps cleared,
    // not just the member list truncated).
    ReferenceTreeSet reference(doc, 0);
    std::vector<NodeId> ref_path;
    for (NodeId n : base_members) {
      reference.ConnectCost(n, &ref_path);
      reference.Commit(ref_path);
    }
    for (NodeId n = 0; n < static_cast<NodeId>(doc.num_nodes()); ++n) {
      EXPECT_EQ(reference.Contains(n), tree.Contains(n)) << "node " << n;
    }
  }
}

TEST(SnippetTreeSetTest, ResetReusesTheSetAcrossDocumentsAndRoots) {
  // One long-lived set Reset across many (document, root) pairs — the
  // greedy selector's per-thread reuse pattern — must match a fresh
  // reference every time. This is what exercises the epoch stamping: stale
  // stamps from earlier selections must never leak into later ones.
  SnippetTreeSet reused;
  std::vector<NodeId> ref_path, actual_path;
  for (uint64_t round = 1; round <= 30; ++round) {
    XmlDatabase db = RandomTree(round % 7 + 1);
    const IndexedDocument& doc = db.index();
    Rng rng(round * 131);
    NodeId root = static_cast<NodeId>(rng.Uniform(doc.num_nodes()));
    while (!doc.is_element(root)) {
      root = static_cast<NodeId>(rng.Uniform(doc.num_nodes()));
    }
    reused.Reset(doc, root);
    ReferenceTreeSet reference(doc, root);
    const NodeId end = doc.subtree_end(root);
    for (int op = 0; op < 40; ++op) {
      NodeId n = root + static_cast<NodeId>(rng.Uniform(
                            static_cast<size_t>(end - root)));
      EXPECT_EQ(reference.ConnectCost(n, &ref_path),
                reused.ConnectCost(n, &actual_path));
      EXPECT_EQ(ref_path, actual_path);
      if (rng.Uniform(3) != 0) {
        reference.Commit(ref_path);
        reused.Commit(actual_path);
      }
    }
    EXPECT_EQ(reference.SortedMembers(), reused.SortedMembers())
        << "round " << round;
  }
}

TEST(SnippetTreeSetTest, CommitToleratesAlreadySelectedNodes) {
  XmlDatabase db = RandomTree(3);
  const IndexedDocument& doc = db.index();
  SnippetTreeSet tree(doc, 0);
  std::vector<NodeId> path;
  tree.ConnectCost(static_cast<NodeId>(doc.num_nodes() - 1), &path);
  tree.Commit(path);
  const size_t edges = tree.edges();
  tree.Commit(path);  // re-committing the same path must not double-count
  EXPECT_EQ(tree.edges(), edges);
}

}  // namespace
}  // namespace extract
