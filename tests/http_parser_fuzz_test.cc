// Fuzz/property tests of the hostile-input boundary: the HTTP request
// parser (and the JSON parser behind the equivalence tooling) must never
// crash, hang or leave an ill-formed state on ANY byte sequence, in ANY
// chunking. Every terminal outcome is either a fully parsed request or an
// error mapping to a well-formed 4xx/5xx.

#include "http/http_parser.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "http/json.h"

namespace extract {
namespace {

/// The parser's contract on terminal states, checked after every run.
void ExpectWellFormedOutcome(const HttpRequestParser& parser) {
  switch (parser.state()) {
    case HttpRequestParser::State::kIncomplete:
      break;  // wants more bytes: fine
    case HttpRequestParser::State::kDone: {
      const HttpRequest& request = parser.request();
      EXPECT_FALSE(request.method.empty());
      EXPECT_FALSE(request.target.empty());
      break;
    }
    case HttpRequestParser::State::kError:
      EXPECT_GE(parser.http_status(), 400);
      EXPECT_LE(parser.http_status(), 505);
      EXPECT_FALSE(parser.error().ok());
      EXPECT_FALSE(parser.error().message().empty());
      EXPECT_FALSE(HttpReasonPhrase(parser.http_status()).empty());
      break;
  }
}

/// Feeds `input` in chunks cut by `rng` and checks the terminal contract.
void RunParser(const std::string& input, Rng& rng) {
  HttpRequestParser parser;
  size_t pos = 0;
  while (pos < input.size() &&
         parser.state() == HttpRequestParser::State::kIncomplete) {
    size_t len = 1 + rng.Uniform(97);
    len = std::min(len, input.size() - pos);
    parser.Consume(std::string_view(input).substr(pos, len));
    pos += len;
  }
  ExpectWellFormedOutcome(parser);
}

std::vector<std::string> SeedRequests() {
  return {
      "GET / HTTP/1.1\r\nHost: a\r\n\r\n",
      "GET /query?q=texas%20apparel&page_size=3&mode=sse HTTP/1.1\r\n"
      "Host: localhost:8080\r\nAccept: text/event-stream\r\n"
      "User-Agent: fuzz\r\n\r\n",
      "HEAD /healthz HTTP/1.0\r\nConnection: close\r\n\r\n",
      "POST /query HTTP/1.1\r\nHost: a\r\nContent-Length: 5\r\n\r\nhello",
      "GET /stats HTTP/1.1\r\nX-A: 1\r\nX-B: \t two \t\r\n\r\n",
      "GET /a?x=%41%42+%43&y=&z HTTP/1.1\r\nHost: h\r\n\r\n",
  };
}

class HttpParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HttpParserFuzz, MutatedRequestsNeverCrash) {
  Rng rng(GetParam());
  std::vector<std::string> seeds = SeedRequests();
  for (int trial = 0; trial < 300; ++trial) {
    std::string request = seeds[rng.Uniform(seeds.size())];
    size_t mutations = 1 + rng.Uniform(4);
    for (size_t m = 0; m < mutations && !request.empty(); ++m) {
      size_t pos = rng.Uniform(request.size());
      switch (rng.Uniform(6)) {
        case 0:  // byte flip, full range including NUL and high bytes
          request[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:  // deletion
          request.erase(pos, 1 + rng.Uniform(4));
          break;
        case 2:  // duplication
          request.insert(pos, request.substr(pos, 1 + rng.Uniform(16)));
          break;
        case 3:  // truncation
          request.resize(pos);
          break;
        case 4:  // inject HTTP metacharacters
          request.insert(pos, std::string(1 + rng.Uniform(3),
                                          "\r\n: %?&=+"[rng.Uniform(9)]));
          break;
        case 5:  // splice a percent escape, possibly malformed
          request.insert(pos, rng.Uniform(2) == 0 ? "%zz" : "%2");
          break;
      }
    }
    RunParser(request, rng);
  }
}

TEST_P(HttpParserFuzz, RandomGarbageNeverCrashes) {
  Rng rng(GetParam() ^ 0x9e3779b97f4a7c15ull);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(rng.Uniform(600), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Uniform(256));
    RunParser(garbage, rng);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HttpParserFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 0xdeadbeefu));

// ------------------------------------------------- deterministic properties

TEST(HttpParserProperty, ChunkingNeverChangesTheOutcome) {
  // Every split offset of a valid request must parse identically.
  const std::string request =
      "GET /query?q=a%20b&n=1 HTTP/1.1\r\nHost: x\r\nX-Y: z\r\n\r\n";
  for (size_t split = 0; split <= request.size(); ++split) {
    HttpRequestParser parser;
    parser.Consume(std::string_view(request).substr(0, split));
    parser.Consume(std::string_view(request).substr(split));
    ASSERT_EQ(parser.state(), HttpRequestParser::State::kDone)
        << "split at " << split;
    EXPECT_EQ(parser.request().method, "GET");
    EXPECT_EQ(parser.request().path, "/query");
    ASSERT_EQ(parser.request().query_params.size(), 2u);
    EXPECT_EQ(parser.request().query_params[0].second, "a b");
  }
  // Byte-at-a-time, the worst chunking.
  HttpRequestParser parser;
  for (char c : request) parser.Consume(std::string_view(&c, 1));
  EXPECT_EQ(parser.state(), HttpRequestParser::State::kDone);
}

TEST(HttpParserProperty, OversizedInputsMapToTheirStatusCodes) {
  {
    // Request line beyond the limit: 414, even without a newline.
    HttpRequestParser parser;
    parser.Consume("GET /" + std::string(20000, 'a'));
    EXPECT_EQ(parser.state(), HttpRequestParser::State::kError);
    EXPECT_EQ(parser.http_status(), 414);
  }
  {
    // Unbounded header section: 431 while still incomplete.
    HttpRequestParser parser;
    parser.Consume("GET / HTTP/1.1\r\n");
    std::string headers;
    for (int i = 0; i < 3000; ++i) {
      headers += "X-H" + std::to_string(i) + ": v\r\n";
    }
    parser.Consume(headers);
    EXPECT_EQ(parser.state(), HttpRequestParser::State::kError);
    EXPECT_EQ(parser.http_status(), 431);
  }
  {
    // Too many header fields: 431.
    HttpRequestParser limits_parser(HttpParseLimits{.max_headers = 4});
    std::string request = "GET / HTTP/1.1\r\n";
    for (int i = 0; i < 6; ++i) request += "A" + std::to_string(i) + ": v\r\n";
    limits_parser.Consume(request + "\r\n");
    EXPECT_EQ(limits_parser.state(), HttpRequestParser::State::kError);
    EXPECT_EQ(limits_parser.http_status(), 431);
  }
  {
    // Declared body beyond the limit: 413 before any body byte arrives.
    HttpRequestParser parser;
    parser.Consume(
        "POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n");
    EXPECT_EQ(parser.state(), HttpRequestParser::State::kError);
    EXPECT_EQ(parser.http_status(), 413);
  }
}

TEST(HttpParserProperty, MalformedRequestLinesAre4xx) {
  const char* cases[] = {
      "GET\r\n",                                 // one part
      "GET /\r\n",                               // two parts
      "GET / HTTP/1.1 extra\r\n",                // four parts
      "G@T / HTTP/1.1\r\n",                      // bad method token
      "GET nopath HTTP/1.1\r\n",                 // target not absolute
      "GET /a\tb HTTP/1.1\r\n",                  // control in target
      "GET / http/1.1\r\n",                      // lowercase version
      "GET / HTTP/1.9\r\n",                      // unknown minor
      "GET / FTP/1.1\r\n",                       // not HTTP at all
      "GET / HTTP/11\r\n",                       // malformed version
      "GET /%zz HTTP/1.1\r\n\r\n",               // bad path escape
      "GET /?q=%2 HTTP/1.1\r\n\r\n",             // truncated query escape
  };
  for (const char* raw : cases) {
    HttpRequestParser parser;
    parser.Consume(raw);
    parser.Consume("\r\n");  // ensure head termination where one is pending
    EXPECT_EQ(parser.state(), HttpRequestParser::State::kError) << raw;
    EXPECT_GE(parser.http_status(), 400) << raw;
    EXPECT_LE(parser.http_status(), 505) << raw;
  }
  {
    // HTTP/2.0 preface styles get the version-specific 505.
    HttpRequestParser parser;
    parser.Consume("GET / HTTP/2.0\r\n");
    EXPECT_EQ(parser.http_status(), 505);
  }
}

TEST(HttpParserProperty, SmugglingVectorsAreRejected) {
  {
    // Obsolete header folding.
    HttpRequestParser parser;
    parser.Consume("GET / HTTP/1.1\r\nA: 1\r\n  folded\r\n\r\n");
    EXPECT_EQ(parser.state(), HttpRequestParser::State::kError);
    EXPECT_EQ(parser.http_status(), 400);
  }
  {
    // Stray CR inside a line.
    HttpRequestParser parser;
    parser.Consume("GET /\ra HTTP/1.1\r\n\r\n");
    EXPECT_EQ(parser.state(), HttpRequestParser::State::kError);
  }
  {
    // Conflicting Content-Length values.
    HttpRequestParser parser;
    parser.Consume(
        "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n");
    EXPECT_EQ(parser.state(), HttpRequestParser::State::kError);
    EXPECT_EQ(parser.http_status(), 400);
  }
  {
    // Transfer-Encoding bodies are out of scope: explicit 501.
    HttpRequestParser parser;
    parser.Consume(
        "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    EXPECT_EQ(parser.state(), HttpRequestParser::State::kError);
    EXPECT_EQ(parser.http_status(), 501);
  }
}

TEST(HttpParserProperty, PercentDecodingIsExact) {
  EXPECT_EQ(*PercentDecode("abc"), "abc");
  EXPECT_EQ(*PercentDecode("a%20b"), "a b");
  EXPECT_EQ(*PercentDecode("%41%42%43"), "ABC");
  EXPECT_EQ(*PercentDecode("%00"), std::string(1, '\0'));
  EXPECT_EQ(*PercentDecode("100%25"), "100%");
  EXPECT_FALSE(PercentDecode("%").ok());
  EXPECT_FALSE(PercentDecode("%2").ok());
  EXPECT_FALSE(PercentDecode("%zz").ok());
  EXPECT_FALSE(PercentDecode("a%2xb").ok());
  // '+' is literal in paths, a space in query components.
  EXPECT_EQ(*PercentDecode("a+b"), "a+b");
  EXPECT_EQ(*DecodeQueryComponent("a+b"), "a b");

  auto params = ParseQueryString("a=1&b=x%20y&c&d=&=v&a=2");
  ASSERT_TRUE(params.ok());
  ASSERT_EQ(params->size(), 6u);  // duplicates and odd shapes preserved
  EXPECT_EQ((*params)[0], (std::pair<std::string, std::string>("a", "1")));
  EXPECT_EQ((*params)[1].second, "x y");
  EXPECT_EQ((*params)[2], (std::pair<std::string, std::string>("c", "")));
  EXPECT_EQ((*params)[4], (std::pair<std::string, std::string>("", "v")));
  EXPECT_EQ((*params)[5].second, "2");
}

// ------------------------------------------------------------- JSON fuzz

class JsonFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonFuzz, MutatedDocumentsNeverCrash) {
  Rng rng(GetParam());
  const std::vector<std::string> seeds = {
      R"({"a": 1, "b": [true, false, null], "c": {"d": "e\n\"f\""}})",
      R"([0, -1.5, 1e10, 2.25e-3, "\u0041\uD83D\uDE00"])",
      R"({"slot":0,"document":"retailer","score":12.25,"key":null})",
      R"("just a string")",
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string doc = seeds[rng.Uniform(seeds.size())];
    size_t mutations = 1 + rng.Uniform(4);
    for (size_t m = 0; m < mutations && !doc.empty(); ++m) {
      size_t pos = rng.Uniform(doc.size());
      switch (rng.Uniform(4)) {
        case 0:
          doc[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:
          doc.erase(pos, 1 + rng.Uniform(4));
          break;
        case 2:
          doc.insert(pos, std::string(1 + rng.Uniform(3),
                                      "{}[]\",:\\"[rng.Uniform(8)]));
          break;
        case 3:
          doc.resize(pos);
          break;
      }
    }
    auto parsed = JsonValue::Parse(doc);  // ok or error, never a crash
    (void)parsed;
  }
}

TEST_P(JsonFuzz, DeepNestingIsBoundedNotFatal) {
  Rng rng(GetParam());
  for (size_t depth : {8u, 63u, 64u, 500u, 5000u}) {
    std::string doc(depth, '[');
    doc += std::string(depth, ']');
    auto parsed = JsonValue::Parse(doc);
    if (depth <= 64) {
      EXPECT_TRUE(parsed.ok()) << depth << ": " << parsed.status();
    } else {
      EXPECT_FALSE(parsed.ok()) << depth;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Values(11u, 12u, 13u));

TEST(JsonProperty, WriterOutputAlwaysReparses) {
  // Adversarial strings (controls, quotes, UTF-8, invalid bytes are the
  // caller's problem but must not crash) and doubles round-trip.
  const std::string nasty =
      std::string("a\0b", 3) + "\n\t\"\\<>&\x7f caf\xc3\xa9";
  JsonBuilder json;
  json.BeginObject()
      .Key(nasty)
      .String(nasty)
      .Key("n")
      .Number(0.1 + 0.2)
      .Key("i")
      .Int(-42)
      .EndObject();
  auto parsed = JsonValue::Parse(json.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->object_items[0].first, nasty);
  EXPECT_EQ(parsed->object_items[0].second.string_value, nasty);
  EXPECT_EQ(parsed->Find("n")->number_value, 0.1 + 0.2);  // exact
  EXPECT_EQ(parsed->Find("i")->number_value, -42.0);
}

}  // namespace
}  // namespace extract
