// Chaos suite: seeded fault schedules replayed against a live in-process
// HTTP server (ISSUE tentpole). Each episode arms a schedule derived from
// its seed, drives JSON serving, SSE serving and a corpus mutation, and
// asserts the blast radius stayed inside the failure domain:
//
//   * every HTTP response carries a precise mapped status (200/404/413/503)
//     — never a 500, never a hung connection, never a leaked kInternal;
//   * SSE streams drain to a terminal `done` frame with per-slot error
//     events, not torn framing;
//   * after disarming, admission and epoch counters quiesce to zero and a
//     replay of the reference query is byte-identical to the pre-chaos
//     response (fault residue must not change results, only availability).
//
// Schedules are deterministic functions of the seed, so a failing episode
// reproduces by seed alone.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"
#include "http/http_server.h"
#include "http/json.h"
#include "http/query_endpoints.h"
#include "http_test_util.h"
#include "search/corpus.h"
#include "search/corpus_snapshot.h"

namespace extract {
namespace {

using testing::Get;
using testing::HttpResponse;
using testing::ParseSseBody;
using testing::SseEvent;

uint64_t XorShift(uint64_t* s) {
  *s ^= *s << 13;
  *s ^= *s >> 7;
  *s ^= *s << 17;
  return *s;
}

// Points whose injected Status propagates to an HTTP response or a mutator
// return — the codes are restricted to ones HttpStatusFor maps precisely,
// so any 500 in an episode is a genuine kInternal leak, not schedule noise.
const char* const kStatusPoints[] = {
    "db.load",        "xml.tokenizer.next", "xml.parser.build",
    "search.execute", "snippet.stage",      "cache.get",
    "cache.put",      "pool.submit",        "admission.acquire",
    "epoch.publish",
};
const StatusCode kInjectableCodes[] = {
    StatusCode::kUnavailable,
    StatusCode::kDeadlineExceeded,
    StatusCode::kResourceExhausted,
    StatusCode::kNotFound,
};

std::vector<FaultRule> ScheduleForSeed(uint64_t seed) {
  uint64_t rng = seed * 2654435761u + 0x9e3779b97f4a7c15u;
  XorShift(&rng);
  const size_t rules = 1 + XorShift(&rng) % 3;
  std::vector<FaultRule> schedule;
  for (size_t r = 0; r < rules; ++r) {
    FaultRule rule;
    rule.point = kStatusPoints[XorShift(&rng) %
                               (sizeof(kStatusPoints) / sizeof(char*))];
    rule.code = kInjectableCodes[XorShift(&rng) % 4];
    rule.message = "chaos seed " + std::to_string(seed);
    if (XorShift(&rng) % 2 == 0) {
      rule.nth_hit = 1 + XorShift(&rng) % 5;
      rule.max_fires = 1 + XorShift(&rng) % 2;
    } else {
      rule.nth_hit = 0;
      rule.probability = 0.05 + 0.35 * ((XorShift(&rng) % 1000) / 1000.0);
      rule.seed = XorShift(&rng) | 1;
      rule.max_fires = 0;
    }
    schedule.push_back(std::move(rule));
  }
  return schedule;
}

class ChaosServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(corpus_.AddDocument("retailer", GenerateRetailerXml()).ok());
    ASSERT_TRUE(corpus_.AddDocument("stores", GenerateStoresXml()).ok());
    corpus_.EnableSnippetCache();
    HttpServerOptions options;
    options.admission.max_concurrent = 4;
    options.admission.max_queue = 8;
    server_ = std::make_unique<HttpServer>(options);
    service_ = std::make_unique<QueryService>(&corpus_, &engine_,
                                              QueryServiceOptions{});
    service_->Register(server_.get());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    FaultInjector::Instance().Disarm();  // never leak an armed schedule
    server_->Stop();
  }

  /// The results array of a JSON page — the byte-comparable slice (stats
  /// carry timings, which legitimately differ between runs).
  static std::string ResultsSlice(const std::string& body) {
    const size_t begin = body.find("\"results\":");
    const size_t end = body.find(",\"stats\":");
    if (begin == std::string::npos || end == std::string::npos) return "";
    return body.substr(begin, end - begin);
  }

  void ExpectQuiesced(const char* where) {
    const AdmissionStats admission = server_->admission().Stats();
    EXPECT_EQ(admission.active, 0u) << where;
    EXPECT_EQ(admission.queued, 0u) << where;
    EXPECT_EQ(corpus_.EpochStatsSnapshot().pinned_readers, 0u) << where;
  }

  XmlCorpus corpus_;
  XSeekEngine engine_;
  std::unique_ptr<HttpServer> server_;
  std::unique_ptr<QueryService> service_;
};

constexpr const char kJsonQuery[] =
    "/query?q=texas&page_size=3&mode=json&order=slot";
constexpr const char kSseQuery[] =
    "/query?q=texas&page_size=3&mode=sse&order=slot";

TEST_F(ChaosServingTest, SeededSchedulesNeverBreachTheFailureDomain) {
  // Reference responses, captured disarmed. Replays must match bytewise.
  const HttpResponse reference = Get(server_->port(), kJsonQuery);
  ASSERT_TRUE(reference.valid);
  ASSERT_EQ(reference.status, 200);
  const std::string reference_results = ResultsSlice(reference.body);
  ASSERT_FALSE(reference_results.empty());

  const int kEpisodes = 200;
  for (uint64_t seed = 0; seed < kEpisodes; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    {
      ScopedFaultInjection arm(ScheduleForSeed(seed));

      // --- JSON serving under faults.
      HttpResponse json = Get(server_->port(), kJsonQuery);
      ASSERT_TRUE(json.valid);
      ASSERT_TRUE(json.status == 200 || json.status == 404 ||
                  json.status == 413 || json.status == 503)
          << "unexpected HTTP status " << json.status << ": " << json.body;
      if (json.status == 200) {
        auto decoded = JsonValue::Parse(json.body);
        ASSERT_TRUE(decoded.ok()) << decoded.status() << "\n" << json.body;
        ASSERT_NE(decoded->Find("results"), nullptr);
        ASSERT_NE(decoded->Find("stats"), nullptr);
        // Per-slot errors must carry the injected (mapped) code, never the
        // kInternal catch-all.
        for (const JsonValue& slot : decoded->Find("results")->array_items) {
          if (const JsonValue* status = slot.Find("status")) {
            EXPECT_NE(status->string_value, "Internal") << json.body;
          }
        }
      } else {
        EXPECT_EQ(json.body.find("Internal"), std::string::npos) << json.body;
      }

      // --- SSE serving under faults: framing stays intact, the stream
      // drains to `done` even when every slot errors.
      HttpResponse sse = Get(server_->port(), kSseQuery);
      ASSERT_TRUE(sse.valid);
      ASSERT_TRUE(sse.status == 200 || sse.status == 404 ||
                  sse.status == 413 || sse.status == 503)
          << "unexpected HTTP status " << sse.status;
      if (sse.status == 200) {
        std::vector<SseEvent> events = ParseSseBody(sse.body);
        ASSERT_FALSE(events.empty());
        EXPECT_EQ(events.back().event, "done");
        for (const SseEvent& event : events) {
          ASSERT_TRUE(event.event == "snippet" || event.event == "error" ||
                      event.event == "done")
              << event.event;
          auto payload = JsonValue::Parse(event.data);
          ASSERT_TRUE(payload.ok()) << event.data;
          if (event.event == "error") {
            EXPECT_NE(payload->Find("status"), nullptr);
            EXPECT_NE(payload->Find("status")->string_value, "Internal");
          }
        }
      }

      // --- Mutation under faults: either it lands or it failed precisely
      // with nothing published; never a half-added document.
      Status add = corpus_.AddDocument("scratch", "<s><t>chaos</t></s>");
      if (add.ok()) {
        Status remove = corpus_.RemoveDocument("scratch");
        if (!remove.ok()) {
          EXPECT_NE(remove.code(), StatusCode::kInternal) << remove;
        }
      } else {
        EXPECT_NE(add.code(), StatusCode::kInternal) << add;
        EXPECT_EQ(corpus_.Find("scratch"), nullptr);
      }
    }

    // Disarmed cleanup of any mutation the schedule interrupted.
    if (corpus_.Find("scratch") != nullptr) {
      ASSERT_TRUE(corpus_.RemoveDocument("scratch").ok());
    }
    ExpectQuiesced("after episode");

    // Periodic disarmed replay: chaos must not leave result-changing
    // residue (a poisoned cache entry, a half-applied mutation).
    if (seed % 20 == 19) {
      HttpResponse replay = Get(server_->port(), kJsonQuery);
      ASSERT_TRUE(replay.valid);
      ASSERT_EQ(replay.status, 200);
      EXPECT_EQ(ResultsSlice(replay.body), reference_results);
    }
  }

  // Final disarmed replay, byte-identical to the pre-chaos reference.
  HttpResponse replay = Get(server_->port(), kJsonQuery);
  ASSERT_TRUE(replay.valid);
  ASSERT_EQ(replay.status, 200);
  EXPECT_EQ(ResultsSlice(replay.body), reference_results);
  ExpectQuiesced("after all episodes");
}

// Socket-level chaos: accept/read/write faults sever connections. The
// client must always reach EOF (no hang), and the server must keep serving
// fresh connections afterwards.
TEST_F(ChaosServingTest, SocketFaultsSeverConnectionsWithoutWedgingServer) {
  const char* const kSocketPoints[] = {"http.accept", "http.read",
                                       "http.write"};
  for (uint64_t seed = 0; seed < 36; ++seed) {
    SCOPED_TRACE("socket seed " + std::to_string(seed));
    {
      FaultRule rule;
      rule.point = kSocketPoints[seed % 3];
      rule.nth_hit = 1 + (seed / 3) % 2;
      rule.max_fires = 1;
      ScopedFaultInjection arm({rule});
      // RecvToEof returning at all is the no-hang assertion; a severed
      // connection legitimately yields an empty or truncated response.
      HttpResponse response = Get(server_->port(), kJsonQuery);
      if (response.valid) {
        EXPECT_TRUE(response.status == 200 || response.status == 404 ||
                    response.status == 413 || response.status == 503)
            << response.status;
      }
    }
    HttpResponse after = Get(server_->port(), "/healthz");
    ASSERT_TRUE(after.valid) << "server wedged after socket fault";
    EXPECT_EQ(after.status, 200);
    ExpectQuiesced("after socket episode");
  }
}

// ------------------------------------------------ degraded wire contract

TEST_F(ChaosServingTest, NodeBudgetDegradesJsonPage) {
  HttpResponse response =
      Get(server_->port(),
          "/query?q=texas&page_size=3&mode=json&order=slot&max_nodes=1");
  ASSERT_TRUE(response.valid);
  ASSERT_EQ(response.status, 200);  // degraded, not failed
  auto decoded = JsonValue::Parse(response.body);
  ASSERT_TRUE(decoded.ok()) << response.body;
  const JsonValue* stats = decoded->Find("stats");
  ASSERT_NE(stats, nullptr);
  ASSERT_NE(stats->Find("degraded"), nullptr);
  EXPECT_TRUE(stats->Find("degraded")->bool_value) << response.body;
  bool saw_exhausted = false;
  for (const JsonValue& slot : decoded->Find("results")->array_items) {
    if (const JsonValue* status = slot.Find("status")) {
      if (status->string_value == "ResourceExhausted") saw_exhausted = true;
    }
  }
  EXPECT_TRUE(saw_exhausted) << response.body;
}

TEST_F(ChaosServingTest, NodeBudgetDegradesSseStream) {
  HttpResponse response =
      Get(server_->port(),
          "/query?q=texas&page_size=3&mode=sse&order=slot&max_nodes=1");
  ASSERT_TRUE(response.valid);
  ASSERT_EQ(response.status, 200);
  std::vector<SseEvent> events = ParseSseBody(response.body);
  ASSERT_FALSE(events.empty());
  ASSERT_EQ(events.back().event, "done");
  auto done = JsonValue::Parse(events.back().data);
  ASSERT_TRUE(done.ok());
  ASSERT_NE(done->Find("degraded"), nullptr);
  EXPECT_TRUE(done->Find("degraded")->bool_value) << events.back().data;
  bool saw_error = false;
  for (const SseEvent& event : events) {
    if (event.event == "error") saw_error = true;
  }
  EXPECT_TRUE(saw_error);
}

TEST_F(ChaosServingTest, ByteBudgetTruncatesJsonPage) {
  HttpResponse full = Get(server_->port(), kJsonQuery);
  ASSERT_TRUE(full.valid);
  ASSERT_EQ(full.status, 200);

  HttpResponse capped = Get(
      server_->port(),
      "/query?q=texas&page_size=3&mode=json&order=slot&max_bytes=64");
  ASSERT_TRUE(capped.valid);
  ASSERT_EQ(capped.status, 200);
  auto decoded = JsonValue::Parse(capped.body);
  ASSERT_TRUE(decoded.ok()) << capped.body;  // truncated BUT well-formed
  EXPECT_TRUE(decoded->Find("stats")->Find("degraded")->bool_value);
  EXPECT_LT(decoded->Find("results")->array_items.size(),
            JsonValue::Parse(full.body)->Find("results")->array_items.size());
}

TEST_F(ChaosServingTest, ByteBudgetTruncatesSseStream) {
  HttpResponse capped = Get(
      server_->port(),
      "/query?q=texas&page_size=3&mode=sse&order=slot&max_bytes=64");
  ASSERT_TRUE(capped.valid);
  ASSERT_EQ(capped.status, 200);
  std::vector<SseEvent> events = ParseSseBody(capped.body);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().event, "done");
  auto done = JsonValue::Parse(events.back().data);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done->Find("degraded")->bool_value) << events.back().data;
}

TEST_F(ChaosServingTest, BadBudgetParamsAreRejected) {
  EXPECT_EQ(Get(server_->port(), "/query?q=texas&max_nodes=0").status, 400);
  EXPECT_EQ(Get(server_->port(), "/query?q=texas&max_nodes=abc").status, 400);
  EXPECT_EQ(Get(server_->port(), "/query?q=texas&max_bytes=0").status, 400);
}

// ------------------------------------------------ snapshot-backed chaos

std::string JsonResultsSlice(const std::string& body) {
  const size_t begin = body.find("\"results\":");
  const size_t end = body.find(",\"stats\":");
  if (begin == std::string::npos || end == std::string::npos) return "";
  return body.substr(begin, end - begin);
}

// The snapshot failure domain: fault-in, checksum and open faults while a
// snapshot-backed corpus serves and the snapshot is re-attached (epoch
// swap) mid-traffic. Responses stay precisely mapped (never a 500), SSE
// drains, and disarmed replays are byte-identical — a failed fault-in or
// swap must leave no residue in served results.
TEST(ChaosSnapshotServingTest, SnapshotFaultsStayInsideFailureDomain) {
  const std::string path = ::testing::TempDir() + "/chaos_snapshot.xcsn";
  {
    auto writer = CorpusSnapshotWriter::Create(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(
        writer->Add("retailer", *XmlDatabase::Load(GenerateRetailerXml()))
            .ok());
    ASSERT_TRUE(writer->Add("stores", *XmlDatabase::Load(GenerateStoresXml()))
                    .ok());
    ASSERT_TRUE(writer->Finish().ok());
  }

  XmlCorpus corpus;
  {
    auto snapshot = CorpusSnapshot::Open(path);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status();
    ASSERT_TRUE(corpus.AttachSnapshot(*snapshot).ok());
  }
  corpus.EnableSnippetCache();
  XSeekEngine engine;
  HttpServerOptions options;
  options.admission.max_concurrent = 4;
  options.admission.max_queue = 8;
  HttpServer server(options);
  QueryService service(&corpus, &engine, QueryServiceOptions{});
  service.Register(&server);
  ASSERT_TRUE(server.Start().ok());

  const HttpResponse reference = Get(server.port(), kJsonQuery);
  ASSERT_TRUE(reference.valid);
  ASSERT_EQ(reference.status, 200);
  const std::string reference_results = JsonResultsSlice(reference.body);
  ASSERT_FALSE(reference_results.empty());

  const char* const kSnapshotPoints[] = {"snapshot.fault", "snapshot.checksum",
                                         "snapshot.open", "epoch.publish"};
  for (uint64_t seed = 0; seed < 48; ++seed) {
    SCOPED_TRACE("snapshot chaos seed " + std::to_string(seed));
    {
      uint64_t rng = seed * 0x9e3779b97f4a7c15u + 1;
      std::vector<FaultRule> schedule;
      const size_t rules = 1 + XorShift(&rng) % 2;
      for (size_t r = 0; r < rules; ++r) {
        FaultRule rule;
        rule.point = kSnapshotPoints[XorShift(&rng) % 4];
        rule.code = XorShift(&rng) % 2 == 0 ? StatusCode::kUnavailable
                                            : StatusCode::kDeadlineExceeded;
        rule.message = "snapshot chaos seed " + std::to_string(seed);
        rule.nth_hit = 0;
        rule.probability = 0.10 + 0.40 * ((XorShift(&rng) % 1000) / 1000.0);
        rule.seed = XorShift(&rng) | 1;
        rule.max_fires = 0;
        schedule.push_back(std::move(rule));
      }
      ScopedFaultInjection arm(std::move(schedule));

      HttpResponse json = Get(server.port(), kJsonQuery);
      ASSERT_TRUE(json.valid);
      ASSERT_TRUE(json.status == 200 || json.status == 404 ||
                  json.status == 413 || json.status == 503)
          << "unexpected HTTP status " << json.status << ": " << json.body;
      EXPECT_EQ(json.body.find("Internal"), std::string::npos) << json.body;

      HttpResponse sse = Get(server.port(), kSseQuery);
      ASSERT_TRUE(sse.valid);
      if (sse.status == 200) {
        std::vector<SseEvent> events = ParseSseBody(sse.body);
        ASSERT_FALSE(events.empty());
        EXPECT_EQ(events.back().event, "done");
      }

      // Epoch swap under chaos: re-open and re-attach the same file.
      // Either it lands (fresh residency, same contents) or it fails with
      // the injected/mapped Status — never kInternal, never half-attached.
      auto reopened = CorpusSnapshot::Open(path);
      if (reopened.ok()) {
        Status attach = corpus.AttachSnapshot(*reopened);
        if (!attach.ok()) {
          EXPECT_NE(attach.code(), StatusCode::kInternal) << attach;
        }
      } else {
        EXPECT_NE(reopened.status().code(), StatusCode::kInternal)
            << reopened.status();
      }
      EXPECT_EQ(corpus.size(), 2u);
    }

    if (seed % 12 == 11) {
      HttpResponse replay = Get(server.port(), kJsonQuery);
      ASSERT_TRUE(replay.valid);
      ASSERT_EQ(replay.status, 200);
      EXPECT_EQ(JsonResultsSlice(replay.body), reference_results);
    }
  }

  FaultInjector::Instance().Disarm();
  HttpResponse replay = Get(server.port(), kJsonQuery);
  ASSERT_TRUE(replay.valid);
  ASSERT_EQ(replay.status, 200);
  EXPECT_EQ(JsonResultsSlice(replay.body), reference_results);
  server.Stop();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace extract
