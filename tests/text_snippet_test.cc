#include "textsnippet/text_snippet.h"

#include <gtest/gtest.h>

#include "datagen/stores_dataset.h"
#include "search/search_engine.h"

namespace extract {
namespace {

struct Ctx {
  XmlDatabase db;
};

Ctx Load(std::string xml) {
  auto db = XmlDatabase::Load(std::move(xml));
  EXPECT_TRUE(db.ok()) << db.status();
  return Ctx{std::move(*db)};
}

TEST(TextSnippetTest, KeywordWindows) {
  Ctx ctx = Load(
      "<doc><p>one two three keyword four five six seven</p></doc>");
  TextSnippetOptions options;
  options.max_words = 5;
  options.context_words = 2;
  TextSnippet snippet = GenerateTextSnippet(ctx.db.index(), 0, {"keyword"},
                                            options);
  ASSERT_EQ(snippet.keyword_covered.size(), 1u);
  EXPECT_TRUE(snippet.keyword_covered[0]);
  EXPECT_EQ(snippet.words,
            (std::vector<std::string>{"two", "three", "keyword", "four",
                                      "five"}));
  EXPECT_NE(snippet.text.find("keyword"), std::string::npos);
  EXPECT_NE(snippet.text.find("..."), std::string::npos);
}

TEST(TextSnippetTest, BudgetRespected) {
  Ctx ctx = Load(GenerateStoresXml());
  for (size_t budget : {1u, 3u, 6u, 10u, 30u}) {
    TextSnippetOptions options;
    options.max_words = budget;
    TextSnippet snippet = GenerateTextSnippet(ctx.db.index(), 0,
                                              {"texas", "jeans"}, options);
    EXPECT_LE(snippet.words.size(), budget);
  }
}

TEST(TextSnippetTest, MissingKeywordNotCovered) {
  Ctx ctx = Load("<doc><p>alpha beta</p></doc>");
  TextSnippet snippet = GenerateTextSnippet(ctx.db.index(), 0,
                                            {"alpha", "zebra"}, {});
  EXPECT_TRUE(snippet.keyword_covered[0]);
  EXPECT_FALSE(snippet.keyword_covered[1]);
}

TEST(TextSnippetTest, FillsBudgetWithLeadingWords) {
  Ctx ctx = Load("<doc><p>one two three four</p></doc>");
  TextSnippetOptions options;
  options.max_words = 3;
  TextSnippet snippet = GenerateTextSnippet(ctx.db.index(), 0, {}, options);
  EXPECT_EQ(snippet.words,
            (std::vector<std::string>{"one", "two", "three"}));
}

TEST(TextSnippetTest, EmptySubtree) {
  Ctx ctx = Load("<doc><p/></doc>");
  TextSnippet snippet = GenerateTextSnippet(ctx.db.index(), 0, {"x"}, {});
  EXPECT_TRUE(snippet.words.empty());
  EXPECT_TRUE(snippet.text.empty());
}

TEST(TextSnippetTest, StructureBlindByDesign) {
  // Tag names never appear: only values. ("Google is a text document search
  // engine and ignores XML tags", paper §4.)
  Ctx ctx = Load("<store><name>Levis</name></store>");
  TextSnippet snippet = GenerateTextSnippet(ctx.db.index(), 0,
                                            {"store", "levis"}, {});
  EXPECT_FALSE(snippet.keyword_covered[0]);  // "store" is markup
  EXPECT_TRUE(snippet.keyword_covered[1]);
}

TEST(CountCoveredTargetsTest, SingleTokensAndPhrases) {
  TextSnippet snippet;
  snippet.words = {"brook", "brothers", "apparel", "houston"};
  EXPECT_EQ(CountCoveredTargets(snippet, {"apparel"}), 1u);
  EXPECT_EQ(CountCoveredTargets(snippet, {"Brook Brothers"}), 1u);  // phrase
  EXPECT_EQ(CountCoveredTargets(snippet, {"brothers brook"}), 0u);  // order
  EXPECT_EQ(CountCoveredTargets(snippet, {"texas", "houston"}), 1u);
  EXPECT_EQ(CountCoveredTargets(snippet, {}), 0u);
  EXPECT_EQ(CountCoveredTargets(snippet, {""}), 0u);
}

TEST(CountCoveredTargetsTest, CaseInsensitiveViaTokenization) {
  TextSnippet snippet;
  snippet.words = {"houston"};
  EXPECT_EQ(CountCoveredTargets(snippet, {"Houston"}), 1u);
}

}  // namespace
}  // namespace extract
