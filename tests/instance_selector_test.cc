#include "snippet/instance_selector.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "common/random.h"
#include "search/search_engine.h"

namespace extract {
namespace {

struct Ctx {
  XmlDatabase db;
  NodeId root = kInvalidNode;
};

Ctx Load(std::string xml) {
  auto db = XmlDatabase::Load(std::move(xml));
  EXPECT_TRUE(db.ok()) << db.status();
  NodeId root = db->index().root();
  return Ctx{std::move(*db), root};
}

// Builds ad-hoc item instance lists from node ids.
std::vector<ItemInstances> Items(
    std::initializer_list<std::vector<NodeId>> lists) {
  std::vector<ItemInstances> out;
  for (const auto& l : lists) out.push_back(ItemInstances{l});
  return out;
}

// Checks selection structural invariants: connected (closed under parents
// within root), sorted, within budget.
void CheckSelection(const IndexedDocument& doc, NodeId root,
                    const Selection& s, size_t bound) {
  EXPECT_LE(s.edges(), bound);
  ASSERT_FALSE(s.nodes.empty());
  EXPECT_EQ(s.nodes.front(), root);
  std::set<NodeId> set(s.nodes.begin(), s.nodes.end());
  for (NodeId n : s.nodes) {
    if (n == root) continue;
    EXPECT_TRUE(set.count(doc.parent(n)) > 0)
        << "node " << n << " missing parent";
    EXPECT_TRUE(doc.IsAncestorOrSelf(root, n));
  }
}

//                      a(0)
//            b(1)              c(4)
//         t1(2)=x  d(3)     e(5)   f(7)
//                           t2(6)=x  t3(8)=y
constexpr std::string_view kSmallXml =
    "<a><b>x<d/></b><c><e>x</e><f>y</f></c></a>";

TEST(GreedySelectorTest, PicksCheapestInstance) {
  Ctx ctx = Load(std::string(kSmallXml));
  const auto& doc = ctx.db.index();
  // Item 0 can be covered by text "x" at node 2 (under b) or node 6 (under
  // c/e). Item 1 needs node 8 (under c/f). Processing item 1 first would
  // make 6 cheaper; in rank order item 0 first: both cost 2 -> document
  // order tie-break picks node 2.
  auto selection = SelectInstancesGreedy(doc, 0, Items({{2, 6}, {8}}),
                                         SelectorOptions{10, false});
  EXPECT_TRUE(selection.covered[0]);
  EXPECT_TRUE(selection.covered[1]);
  std::set<NodeId> set(selection.nodes.begin(), selection.nodes.end());
  EXPECT_TRUE(set.count(2) > 0);   // chose node 2 for item 0
  EXPECT_FALSE(set.count(6) > 0);
  CheckSelection(doc, 0, selection, 10);
}

TEST(GreedySelectorTest, ReusesSharedPath) {
  Ctx ctx = Load(std::string(kSmallXml));
  const auto& doc = ctx.db.index();
  // Cover y (node 8) first: c and f enter the tree. Now covering x via
  // node 6 costs 2 (e + t2), same as node 2 (b + t1)... with bound 4 both
  // fit only via the shared-c path: selecting {8} costs 3 edges (c,f,t3),
  // leaving 1 edge: x unaffordable either way.
  auto selection = SelectInstancesGreedy(doc, 0, Items({{8}, {2, 6}}),
                                         SelectorOptions{4, false});
  EXPECT_TRUE(selection.covered[0]);
  EXPECT_FALSE(selection.covered[1]);
  EXPECT_EQ(selection.edges(), 3u);
}

TEST(GreedySelectorTest, SkipAndContinueVsStopOnOverflow) {
  Ctx ctx = Load(std::string(kSmallXml));
  const auto& doc = ctx.db.index();
  // Item 0 costs 3 (node 8: c,f,t3); bound 2 rejects it. Item 1 (node 1)
  // costs 1 and fits — covered under skip-and-continue, not under stop.
  auto cont = SelectInstancesGreedy(doc, 0, Items({{8}, {1}}),
                                    SelectorOptions{2, false});
  EXPECT_FALSE(cont.covered[0]);
  EXPECT_TRUE(cont.covered[1]);

  auto stop = SelectInstancesGreedy(doc, 0, Items({{8}, {1}}),
                                    SelectorOptions{2, true});
  EXPECT_FALSE(stop.covered[0]);
  EXPECT_FALSE(stop.covered[1]);
}

TEST(GreedySelectorTest, ZeroCostForAlreadySelectedNode) {
  Ctx ctx = Load(std::string(kSmallXml));
  const auto& doc = ctx.db.index();
  // Root itself as instance: zero cost even with bound 0.
  auto selection =
      SelectInstancesGreedy(doc, 0, Items({{0}}), SelectorOptions{0, false});
  EXPECT_TRUE(selection.covered[0]);
  EXPECT_EQ(selection.edges(), 0u);
}

TEST(GreedySelectorTest, ItemWithNoInstancesStaysUncovered) {
  Ctx ctx = Load(std::string(kSmallXml));
  auto selection = SelectInstancesGreedy(ctx.db.index(), 0, Items({{}}),
                                         SelectorOptions{10, false});
  EXPECT_FALSE(selection.covered[0]);
  EXPECT_EQ(selection.edges(), 0u);
}

TEST(GreedySelectorTest, SharedInstanceCoversBothItemsFree) {
  Ctx ctx = Load(std::string(kSmallXml));
  auto selection = SelectInstancesGreedy(ctx.db.index(), 0,
                                         Items({{2}, {2}}),
                                         SelectorOptions{2, false});
  EXPECT_TRUE(selection.covered[0]);
  EXPECT_TRUE(selection.covered[1]);  // second item costs 0
  EXPECT_EQ(selection.edges(), 2u);
}

TEST(ExactSelectorTest, BeatsGreedyOnAdversarialInstance) {
  // Two equal-cost instances for item 0, but only one of them shares a path
  // with item 1. Greedy's document-order tie-break picks the wrong branch
  // and runs out of budget; branch-and-bound covers both items.
  //
  //        r(0)
  //    w(1)        q(4)
  //    p(2)     s(5)    u(7)
  //   "A"(3)   "A"(6)  "B"(8)
  Ctx ctx = Load("<r><w><p>A</p></w><q><s>A</s><u>B</u></q></r>");
  const auto& doc = ctx.db.index();
  ASSERT_TRUE(doc.is_text(3));
  ASSERT_TRUE(doc.is_text(6));
  // Item 0 ("A" text): node 3 (cost 3: w,p,text) or node 6 (cost 3: q,s,
  // text). Item 1 (element u): cost 2 standalone, 1 once q is selected.
  // Bound 4: greedy picks node 3 (tie -> document order), then cannot
  // afford item 1; exact picks node 6 and covers both in exactly 4 edges.
  auto greedy = SelectInstancesGreedy(doc, 0, Items({{3, 6}, {7}}),
                                      SelectorOptions{4, false});
  EXPECT_EQ(greedy.covered_count(), 1u);
  auto exact = SelectInstancesExact(doc, 0, Items({{3, 6}, {7}}),
                                    SelectorOptions{4, false});
  EXPECT_EQ(exact.covered_count(), 2u);
  EXPECT_EQ(exact.edges(), 4u);
  CheckSelection(doc, 0, exact, 4);
}

TEST(ExactSelectorTest, PrefersFewerEdgesOnEqualCoverage) {
  Ctx ctx = Load(std::string(kSmallXml));
  const auto& doc = ctx.db.index();
  // One item, two instances: node 1 (cost 1) or node 8 (cost 3).
  auto exact = SelectInstancesExact(doc, 0, Items({{1, 8}}),
                                    SelectorOptions{10, false});
  EXPECT_EQ(exact.covered_count(), 1u);
  EXPECT_EQ(exact.edges(), 1u);
}

TEST(ExactSelectorTest, EmptyItemsYieldRootOnly) {
  Ctx ctx = Load(std::string(kSmallXml));
  auto exact = SelectInstancesExact(ctx.db.index(), 0, {},
                                    SelectorOptions{5, false});
  EXPECT_EQ(exact.covered_count(), 0u);
  EXPECT_EQ(exact.edges(), 0u);
  EXPECT_EQ(exact.nodes, (std::vector<NodeId>{0}));
}

// --------- properties on random inputs: greedy vs exact, invariants -------

struct SelectorCase {
  uint64_t seed;
  size_t bound;
};

class SelectorProperty : public ::testing::TestWithParam<SelectorCase> {};

TEST_P(SelectorProperty, GreedyRespectsInvariantsAndExactDominates) {
  Rng rng(GetParam().seed);
  // Random tree.
  std::string xml;
  std::function<void(int)> gen = [&](int depth) {
    std::string tag = "t" + std::to_string(rng.Uniform(4));
    xml += "<" + tag + ">";
    size_t kids = depth > 0 ? rng.Uniform(3) + (depth > 2 ? 1 : 0) : 0;
    for (size_t i = 0; i < kids; ++i) gen(depth - 1);
    if (kids == 0) xml += "v" + std::to_string(rng.Uniform(6));
    xml += "</" + tag + ">";
  };
  gen(4);
  Ctx ctx = Load(xml);
  const auto& doc = ctx.db.index();

  // Random items: up to 6 items with up to 3 instances each.
  size_t num_items = 2 + rng.Uniform(5);
  std::vector<ItemInstances> items(num_items);
  for (auto& item : items) {
    size_t count = 1 + rng.Uniform(3);
    std::set<NodeId> chosen;
    for (size_t i = 0; i < count; ++i) {
      chosen.insert(static_cast<NodeId>(rng.Uniform(doc.num_nodes())));
    }
    item.nodes.assign(chosen.begin(), chosen.end());
  }

  SelectorOptions options{GetParam().bound, false};
  Selection greedy = SelectInstancesGreedy(doc, 0, items, options);
  Selection exact = SelectInstancesExact(doc, 0, items, options);

  CheckSelection(doc, 0, greedy, options.size_bound);
  CheckSelection(doc, 0, exact, options.size_bound);
  // The exact solver never covers fewer items than greedy.
  EXPECT_GE(exact.covered_count(), greedy.covered_count());
  // Coverage flags are consistent with the selected node sets.
  std::set<NodeId> greedy_set(greedy.nodes.begin(), greedy.nodes.end());
  for (size_t i = 0; i < items.size(); ++i) {
    bool reachable = false;
    for (NodeId inst : items[i].nodes) {
      if (greedy_set.count(inst) > 0) reachable = true;
    }
    EXPECT_EQ(greedy.covered[i], reachable);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, SelectorProperty,
    ::testing::Values(SelectorCase{1, 0}, SelectorCase{2, 1},
                      SelectorCase{3, 2}, SelectorCase{4, 3},
                      SelectorCase{5, 4}, SelectorCase{6, 5},
                      SelectorCase{7, 6}, SelectorCase{8, 8},
                      SelectorCase{9, 10}, SelectorCase{10, 12},
                      SelectorCase{11, 3}, SelectorCase{12, 5},
                      SelectorCase{13, 7}, SelectorCase{14, 2},
                      SelectorCase{15, 9}, SelectorCase{16, 4}));

}  // namespace
}  // namespace extract
