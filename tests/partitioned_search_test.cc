// Intra-document partition sharding must be invisible in results: the
// partition-parallel SLCA/XSeek search and the partition-parallel snippet
// scans must be byte-identical to the sequential reference path
// (partitions = 1 / partition_threads = 1) for every grid and thread
// count. This suite pins that equivalence — including the boundary cases a
// node-range grid invites: a keyword absent from a partition, an SLCA
// subtree straddling a partition boundary, and more partitions than
// matches. Runs under ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <sstream>

#include "datagen/random_xml.h"
#include "datagen/retailer_dataset.h"
#include "search/corpus.h"
#include "search/slca.h"
#include "snippet/snippet_context.h"
#include "snippet/snippet_service.h"
#include "snippet/snippet_tree.h"

namespace extract {
namespace {

// Byte-level view of everything a renderer can observe about a snippet.
std::string SerializeSnippet(const Snippet& s) {
  std::ostringstream out;
  out << "root: " << s.result_root << "\nnodes:";
  for (NodeId node : s.nodes) out << ' ' << node;
  out << "\nkey: " << (s.key.found() ? s.key.value : "(none)");
  out << "\nentity: label=" << s.return_entity.label
      << " evidence=" << static_cast<int>(s.return_entity.evidence)
      << " instances=";
  for (NodeId node : s.return_entity.instances) out << node << ',';
  out << "\nilist: " << s.ilist.ToString();
  out << "\ncoverage: " << RenderCoverage(s);
  out << "\ntree:\n" << RenderSnippet(s);
  return out.str();
}

// Loads `xml` twice: once with the sequential single-partition layout and
// once cut into tiny partitions (so even small subtrees straddle
// boundaries). Both databases index identical content.
struct DbPair {
  XmlDatabase sequential;
  XmlDatabase partitioned;
};

DbPair LoadPair(const std::string& xml, size_t target_nodes) {
  LoadOptions seq;
  seq.partitioning.target_nodes_per_partition = 1u << 30;
  LoadOptions par;
  par.partitioning.target_nodes_per_partition = target_nodes;
  par.partitioning.max_partitions = 0;
  auto a = XmlDatabase::Load(xml, seq);
  auto b = XmlDatabase::Load(xml, par);
  EXPECT_TRUE(a.ok()) << a.status();
  EXPECT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->partitions().count(), 1u);
  return DbPair{std::move(*a), std::move(*b)};
}

void ExpectSameResults(const std::vector<QueryResult>& expected,
                       const std::vector<QueryResult>& actual,
                       const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].root, actual[i].root) << label << " result " << i;
    EXPECT_EQ(expected[i].slca, actual[i].slca) << label << " result " << i;
    ASSERT_EQ(expected[i].matches.size(), actual[i].matches.size()) << label;
    for (size_t k = 0; k < expected[i].matches.size(); ++k) {
      EXPECT_EQ(expected[i].matches[k], actual[i].matches[k])
          << label << " result " << i << " keyword " << k;
    }
  }
}

// Runs `query_text` through both databases with both engine modes and
// asserts the four runs agree (sequential db is the reference).
void ExpectSearchEquivalence(const DbPair& pair, const std::string& query_text,
                             size_t threads) {
  Query query = Query::Parse(query_text);
  SearchOptions seq_options;
  seq_options.partition_threads = 1;
  XSeekEngine reference(seq_options);
  auto expected = reference.Search(pair.sequential, query);
  ASSERT_TRUE(expected.ok()) << expected.status();

  SearchOptions par_options;
  par_options.partition_threads = threads;
  XSeekEngine partitioned(par_options);
  for (int run = 0; run < 3; ++run) {  // repeats: no schedule dependence
    auto actual = partitioned.Search(pair.partitioned, query);
    ASSERT_TRUE(actual.ok()) << actual.status();
    ExpectSameResults(*expected, *actual,
                      "query '" + query_text + "' threads " +
                          std::to_string(threads) + " run " +
                          std::to_string(run));
  }
}

TEST(PartitionedSearchTest, SyntheticDocAllQueriesAllThreadCounts) {
  RandomXmlOptions options;
  options.levels = 3;
  options.entities_per_parent = 6;
  options.seed = 7;
  RandomXmlData data = GenerateRandomXml(options);
  DbPair pair = LoadPair(data.xml, 50);
  ASSERT_GT(pair.partitioned.partitions().count(), 4u);

  std::vector<std::string> queries;
  queries.push_back("e1");                            // broad tag match
  queries.push_back("e2 e3");                         // nested entities
  for (size_t i = 0; i < data.keyword_pool.size() && i < 2; ++i) {
    queries.push_back(data.keyword_pool[i] + " e1");  // value + tag
  }
  for (const std::string& q : queries) {
    for (size_t threads : {0u, 2u, 4u, 8u}) {
      ExpectSearchEquivalence(pair, q, threads);
    }
  }
}

TEST(PartitionedSearchTest, RetailerDemoDocument) {
  DbPair pair = LoadPair(GenerateRetailerXml(), 20);
  ASSERT_GT(pair.partitioned.partitions().count(), 2u);
  for (const char* q : {"texas apparel retailer", "houston", "store clothes"}) {
    ExpectSearchEquivalence(pair, q, 4);
  }
}

// Keyword absent from a partition: the driving posting list has empty
// chunks. A two-entity document cut into many partitions guarantees whole
// partitions without any match.
TEST(PartitionedSearchTest, KeywordAbsentFromPartitions) {
  std::string xml = "<root>";
  // 40 filler entities with unrelated content, then the two matches at the
  // far ends of the document.
  xml += "<item><name>alpha first</name><tag>beta</tag></item>";
  for (int i = 0; i < 40; ++i) {
    xml += "<item><name>filler" + std::to_string(i) + "</name></item>";
  }
  xml += "<item><name>alpha last</name><tag>beta</tag></item></root>";
  DbPair pair = LoadPair(xml, 8);
  ASSERT_GT(pair.partitioned.partitions().count(), 4u);
  ExpectSearchEquivalence(pair, "alpha beta", 4);
  ExpectSearchEquivalence(pair, "alpha filler3", 4);
}

// More partitions than matches: every chunk holds at most one posting of
// the driving list.
TEST(PartitionedSearchTest, PartitionCountExceedsMatchCount) {
  std::string xml = "<root>";
  for (int i = 0; i < 60; ++i) {
    xml += "<entry><label>common node " + std::to_string(i) + "</label>";
    if (i == 17) xml += "<special>needle</special>";
    xml += "</entry>";
  }
  xml += "</root>";
  DbPair pair = LoadPair(xml, 4);  // dozens of partitions, 1 needle match
  ASSERT_GT(pair.partitioned.partitions().count(), 10u);
  ExpectSearchEquivalence(pair, "needle common", 8);
  ExpectSearchEquivalence(pair, "needle node", 3);
}

// An SLCA whose subtree straddles a partition boundary: with tiny
// partitions, a match pair separated by many interior nodes forces the
// witness subtree across several partitions; left/right matches from other
// lists also cross boundaries.
TEST(PartitionedSearchTest, SlcaStraddlesPartitionBoundary) {
  std::string xml = "<root><wrap>";
  xml += "<a>left anchor</a>";
  for (int i = 0; i < 30; ++i) {
    xml += "<pad><x>p" + std::to_string(i) + "</x></pad>";
  }
  xml += "<b>right anchor</b>";
  xml += "</wrap></root>";
  DbPair pair = LoadPair(xml, 6);
  ASSERT_GT(pair.partitioned.partitions().count(), 5u);
  // "left right" has its only SLCA at <wrap>, spanning every partition.
  ExpectSearchEquivalence(pair, "left right", 4);
  ExpectSearchEquivalence(pair, "anchor", 4);

  // Cross-check the partitioned SLCA kernel directly against the counting
  // oracle on the partitioned database.
  Query query = Query::Parse("left right");
  const XmlDatabase& db = pair.partitioned;
  std::vector<const PostingList*> lists;
  for (const std::string& k : query.keywords) {
    const PostingList* list = db.inverted().Find(k);
    ASSERT_NE(list, nullptr);
    lists.push_back(list);
  }
  auto oracle = ComputeSlcaBySubtreeCounts(db.index(), lists);
  auto partitioned = ComputeSlcaIndexedLookupEagerPartitioned(
      db.index(), lists, db.partitions(), 4);
  EXPECT_EQ(oracle, partitioned);
}

// The snippet-side scans: a partition-parallel SnippetContext must produce
// snippets byte-identical to the sequential context, result by result.
TEST(PartitionedSearchTest, PartitionedSnippetScansMatchSequential) {
  RandomXmlOptions options;
  options.levels = 3;
  options.entities_per_parent = 5;
  options.seed = 21;
  RandomXmlData data = GenerateRandomXml(options);
  DbPair pair = LoadPair(data.xml, 40);
  ASSERT_GT(pair.partitioned.partitions().count(), 3u);

  Query query = Query::Parse("e1 e2");
  XSeekEngine engine;
  auto results = engine.Search(pair.sequential, query);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());

  SnippetOptions snippet_options;
  snippet_options.size_bound = 12;

  SnippetService seq_service(&pair.sequential);
  ScanOptions seq_scan;
  seq_scan.scan_threads = 1;
  SnippetContext seq_ctx(&pair.sequential, query, seq_scan);

  for (size_t threads : {0u, 2u, 4u}) {
    SnippetService par_service(&pair.partitioned);
    ScanOptions par_scan;
    par_scan.scan_threads = threads;
    SnippetContext par_ctx(&pair.partitioned, query, par_scan);
    for (const QueryResult& r : *results) {
      auto expected = seq_service.Generate(seq_ctx, r, snippet_options);
      auto actual = par_service.Generate(par_ctx, r, snippet_options);
      ASSERT_TRUE(expected.ok()) << expected.status();
      ASSERT_TRUE(actual.ok()) << actual.status();
      EXPECT_EQ(SerializeSnippet(*expected), SerializeSnippet(*actual))
          << "threads " << threads << " root " << r.root;
    }
    // The partitioned context attributed its scans per partition.
    bool saw_partition_attribution = false;
    for (const StageStat& stat : par_ctx.ScanStatsSnapshot()) {
      if (stat.name.rfind("scan.statistics.p", 0) == 0) {
        saw_partition_attribution = true;
      }
    }
    if (threads != 1) EXPECT_TRUE(saw_partition_attribution);
  }
}

// Corpus axis composition: one giant document plus several small ones must
// serve identical pages whichever axis SearchAll picks.
TEST(PartitionedSearchTest, CorpusComposesDocumentAndPartitionAxes) {
  RandomXmlOptions big;
  big.levels = 3;
  big.entities_per_parent = 6;
  big.seed = 3;
  LoadOptions load;
  load.partitioning.target_nodes_per_partition = 64;

  XmlCorpus corpus;
  ASSERT_TRUE(
      corpus.AddDocument("big", GenerateRandomXml(big).xml, load).ok());
  for (int d = 0; d < 3; ++d) {
    RandomXmlOptions small;
    small.levels = 2;
    small.entities_per_parent = 3;
    small.seed = 100 + d;
    ASSERT_TRUE(corpus
                    .AddDocument("small" + std::to_string(d),
                                 GenerateRandomXml(small).xml)
                    .ok());
  }
  ASSERT_GT(corpus.Find("big")->partitions().count(), 1u);

  XSeekEngine engine;
  Query query = Query::Parse("e1 e2");
  CorpusServingOptions sequential;
  sequential.search_threads = 1;
  auto expected =
      corpus.SearchAll(query, engine, RankingOptions{}, sequential);
  ASSERT_TRUE(expected.ok());
  ASSERT_FALSE(expected->empty());

  for (size_t threads : {0u, 2u, 4u, 8u}) {
    CorpusServingOptions serving;
    serving.search_threads = threads;
    auto actual = corpus.SearchAll(query, engine, RankingOptions{}, serving);
    ASSERT_TRUE(actual.ok());
    ASSERT_EQ(expected->size(), actual->size()) << "threads " << threads;
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ((*expected)[i].document, (*actual)[i].document);
      EXPECT_EQ((*expected)[i].result.root, (*actual)[i].result.root);
      EXPECT_EQ((*expected)[i].score, (*actual)[i].score);
    }
  }
}

}  // namespace
}  // namespace extract
