// Byte-equivalence harness for the cross-query snippet cache: whatever mix
// of hot and cold traffic, thread count, eviction pressure or document
// churn the cache sees, served snippets must be byte-identical to the
// uncached SnippetService path.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"
#include "search/corpus.h"
#include "snippet/snippet_cache.h"
#include "snippet/snippet_service.h"
#include "xml/serializer.h"

namespace extract {
namespace {

struct Ctx {
  XmlDatabase db;
  Query query;
  std::vector<QueryResult> results;
};

Ctx RunQuery(std::string xml, const std::string& query_text) {
  auto db = XmlDatabase::Load(std::move(xml));
  EXPECT_TRUE(db.ok()) << db.status();
  Query query = Query::Parse(query_text);
  XSeekEngine engine;
  auto results = engine.Search(*db, query);
  EXPECT_TRUE(results.ok()) << results.status();
  return Ctx{std::move(*db), std::move(query), std::move(*results)};
}

/// Byte-level fingerprint of a snippet: every observable field.
std::string Fingerprint(const Snippet& s) {
  std::string out;
  out += std::to_string(s.result_root);
  out += '|';
  for (NodeId n : s.nodes) {
    out += std::to_string(n);
    out += ',';
  }
  out += '|';
  for (bool c : s.covered) out += c ? '1' : '0';
  out += '|';
  out += s.key.value;
  out += '|';
  out += std::to_string(s.return_entity.label);
  out += '/';
  out += std::to_string(static_cast<int>(s.return_entity.evidence));
  out += '/';
  for (NodeId n : s.return_entity.instances) {
    out += std::to_string(n);
    out += ',';
  }
  out += '|';
  out += s.ilist.ToString();
  out += '|';
  out += s.tree ? WriteXml(*s.tree) : "(no tree)";
  return out;
}

std::vector<std::string> Fingerprints(const std::vector<Snippet>& snippets) {
  std::vector<std::string> out;
  out.reserve(snippets.size());
  for (const Snippet& s : snippets) out.push_back(Fingerprint(s));
  return out;
}

// A mixed hot/cold workload hammered from many threads through one shared
// cache: every batch any thread observes must equal the uncached reference.
TEST(CachingEquivalenceTest, ConcurrentHotColdWorkloadMatchesUncached) {
  Ctx stores = RunQuery(GenerateStoresXml(), "store texas");
  Ctx retailer = RunQuery(GenerateRetailerXml(), "Texas apparel retailer");
  ASSERT_FALSE(stores.results.empty());
  ASSERT_FALSE(retailer.results.empty());

  SnippetService stores_service(&stores.db);
  SnippetService retailer_service(&retailer.db);
  SnippetCache cache;  // shared by both documents
  CachingSnippetService stores_caching(&stores_service, &cache, "stores");
  CachingSnippetService retailer_caching(&retailer_service, &cache,
                                         "retailer");

  // Uncached references, one per (document, bound) the workload serves.
  // Varying bounds makes some requests hot (repeated bound) and some cold
  // (first sighting of a bound) in every thread.
  const std::vector<size_t> bounds = {6, 10, 14};
  std::vector<std::vector<std::string>> stores_expected;
  std::vector<std::vector<std::string>> retailer_expected;
  for (size_t bound : bounds) {
    SnippetOptions options;
    options.size_bound = bound;
    BatchOptions sequential;
    sequential.num_threads = 1;
    auto s = stores_service.GenerateBatch(stores.query, stores.results,
                                          options, sequential);
    ASSERT_TRUE(s.ok()) << s.status();
    stores_expected.push_back(Fingerprints(*s));
    auto r = retailer_service.GenerateBatch(retailer.query, retailer.results,
                                            options, sequential);
    ASSERT_TRUE(r.ok()) << r.status();
    retailer_expected.push_back(Fingerprints(*r));
  }

  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 12;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        const size_t which = (t + round) % bounds.size();
        SnippetOptions options;
        options.size_bound = bounds[which];
        BatchOptions batch;
        batch.num_threads = 2;
        const bool use_stores = (t + round) % 2 == 0;
        auto got = use_stores
                       ? stores_caching.GenerateBatch(
                             stores.query, stores.results, options, batch)
                       : retailer_caching.GenerateBatch(
                             retailer.query, retailer.results, options, batch);
        if (!got.ok()) {
          failures[t] = got.status().ToString();
          return;
        }
        const auto& expected =
            use_stores ? stores_expected[which] : retailer_expected[which];
        if (Fingerprints(*got) != expected) {
          failures[t] = "divergent output at round " + std::to_string(round);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].empty()) << "thread " << t << ": " << failures[t];
  }

  SnippetCacheStats stats = cache.Stats();
  EXPECT_GT(stats.hits, 0u) << "hot traffic must hit";
  EXPECT_GT(stats.misses, 0u);
  EXPECT_EQ(stats.evictions, 0u) << "default capacity must not thrash here";
}

// An undersized cache evicting on every round must still serve exact
// bytes — eviction may cost performance, never correctness.
TEST(CachingEquivalenceTest, EvictionUnderLoadStaysByteIdentical) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_GE(ctx.results.size(), 2u);
  SnippetService service(&ctx.db);
  SnippetCache::Options tiny;
  tiny.capacity = 1;
  tiny.num_shards = 1;
  SnippetCache cache(tiny);
  CachingSnippetService caching(&service, &cache, "stores");

  const std::vector<size_t> bounds = {4, 7, 10, 13};
  std::vector<std::vector<std::string>> expected;
  for (size_t bound : bounds) {
    SnippetOptions options;
    options.size_bound = bound;
    BatchOptions sequential;
    sequential.num_threads = 1;
    auto reference =
        service.GenerateBatch(ctx.query, ctx.results, options, sequential);
    ASSERT_TRUE(reference.ok());
    expected.push_back(Fingerprints(*reference));
  }

  std::vector<std::thread> threads;
  std::vector<std::string> failures(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 10; ++round) {
        const size_t which = (t + round) % bounds.size();
        SnippetOptions options;
        options.size_bound = bounds[which];
        auto got = caching.GenerateBatch(ctx.query, ctx.results, options,
                                         BatchOptions{});
        if (!got.ok()) {
          failures[t] = got.status().ToString();
          return;
        }
        if (Fingerprints(*got) != expected[which]) {
          failures[t] = "divergent output under eviction";
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
  EXPECT_GT(cache.Stats().evictions, 0u)
      << "the workload must actually thrash the tiny cache";
  EXPECT_LE(cache.Stats().entries, cache.capacity());
}

// Corpus-level serving with the cache enabled is byte-identical to serving
// without it, on the tier-1 example corpora.
TEST(CachingEquivalenceTest, CorpusCachedServingMatchesUncached) {
  XmlCorpus uncached;
  ASSERT_TRUE(uncached.AddDocument("stores", GenerateStoresXml()).ok());
  ASSERT_TRUE(uncached.AddDocument("retailer", GenerateRetailerXml()).ok());
  XmlCorpus cached;
  ASSERT_TRUE(cached.AddDocument("stores", GenerateStoresXml()).ok());
  ASSERT_TRUE(cached.AddDocument("retailer", GenerateRetailerXml()).ok());
  cached.EnableSnippetCache();

  Query query = Query::Parse("texas clothes");
  XSeekEngine engine;
  auto hits = uncached.SearchAll(query, engine);
  ASSERT_TRUE(hits.ok());
  ASSERT_GT(hits->size(), 1u);

  SnippetOptions options;
  options.size_bound = 9;
  auto expected = uncached.GenerateSnippets(query, *hits, options);
  ASSERT_TRUE(expected.ok()) << expected.status();

  // Cold, then warm, then warm at a wide thread count.
  for (size_t threads : {1u, 1u, 8u}) {
    BatchOptions batch;
    batch.num_threads = threads;
    auto got = cached.GenerateSnippets(query, *hits, options, batch);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(Fingerprints(*got), Fingerprints(*expected));
  }
  SnippetCacheStats stats = cached.snippet_cache()->Stats();
  EXPECT_EQ(stats.misses, hits->size());
  EXPECT_EQ(stats.hits, 2 * hits->size());
}

// Removing a document and registering different content under the same
// name must invalidate its cached snippets: serving after the swap matches
// fresh generation against the new content, never the stale bytes.
TEST(CachingEquivalenceTest, InvalidationAfterDocumentSwap) {
  XmlCorpus corpus;
  corpus.EnableSnippetCache();
  ASSERT_TRUE(corpus.AddDocument("data", GenerateStoresXml()).ok());

  Query query = Query::Parse("texas");
  XSeekEngine engine;
  auto old_hits = corpus.SearchAll(query, engine);
  ASSERT_TRUE(old_hits.ok());
  ASSERT_FALSE(old_hits->empty());
  SnippetOptions options;
  options.size_bound = 10;
  auto old_snippets = corpus.GenerateSnippets(query, *old_hits, options);
  ASSERT_TRUE(old_snippets.ok());
  ASSERT_GT(corpus.snippet_cache()->Stats().entries, 0u);

  // Swap: same name, different content (the retailer data set also matches
  // "texas", with different results and snippets).
  ASSERT_TRUE(corpus.RemoveDocument("data").ok());
  EXPECT_EQ(corpus.snippet_cache()->Stats().entries, 0u)
      << "removal must drop the document's cached snippets";
  ASSERT_TRUE(corpus.AddDocument("data", GenerateRetailerXml()).ok());

  auto new_hits = corpus.SearchAll(query, engine);
  ASSERT_TRUE(new_hits.ok());
  ASSERT_FALSE(new_hits->empty());
  auto new_snippets = corpus.GenerateSnippets(query, *new_hits, options);
  ASSERT_TRUE(new_snippets.ok()) << new_snippets.status();

  // Reference: the same content served by a never-cached corpus.
  XmlCorpus reference;
  ASSERT_TRUE(reference.AddDocument("data", GenerateRetailerXml()).ok());
  auto expected = reference.GenerateSnippets(query, *new_hits, options);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Fingerprints(*new_snippets), Fingerprints(*expected));
  EXPECT_NE(Fingerprints(*new_snippets), Fingerprints(*old_snippets))
      << "swap test needs content whose snippets actually differ";

  // RemoveDocument on an unknown name reports NotFound.
  EXPECT_EQ(corpus.RemoveDocument("nope").code(), StatusCode::kNotFound);
}

// Invalidation racing an open stream: a lazily-producing stream pinned to
// the old epoch is still draining (and Put-ting its snippets into the
// cache) while the document is removed and re-added with new content.
// Cache keys are scoped to the registration instance, so the old stream's
// late Puts must never leak stale bytes into the new epoch's queries —
// while the pinned old stream itself still serves the old content.
TEST(CachingEquivalenceTest, InvalidationDuringOpenStream) {
  XmlCorpus corpus;
  corpus.EnableSnippetCache();
  ASSERT_TRUE(corpus.AddDocument("data", GenerateStoresXml()).ok());

  Query query = Query::Parse("texas");
  XSeekEngine engine;
  SnippetOptions options;
  options.size_bound = 10;
  StreamOptions lazy;
  lazy.num_threads = 1;  // slots compute only as they are pulled

  // Open the stream BEFORE the swap: the search runs at open against the
  // old content, snippet generation (and its cache Puts) is still pending.
  auto old_stream = corpus.ServeQuery(query, engine, RankingOptions{},
                                      CorpusServingOptions{}, options, lazy);
  ASSERT_TRUE(old_stream.ok()) << old_stream.status();
  ASSERT_FALSE(old_stream->page().empty());

  // Swap: same name, different content, while the old stream is open.
  ASSERT_TRUE(corpus.RemoveDocument("data").ok());
  ASSERT_TRUE(corpus.AddDocument("data", GenerateRetailerXml()).ok());

  // A new-epoch query must serve fresh bytes (never the old content's).
  XmlCorpus reference;
  ASSERT_TRUE(reference.AddDocument("data", GenerateRetailerXml()).ok());
  auto new_hits = corpus.SearchAll(query, engine);
  ASSERT_TRUE(new_hits.ok());
  ASSERT_FALSE(new_hits->empty());
  auto new_snippets = corpus.GenerateSnippets(query, *new_hits, options);
  ASSERT_TRUE(new_snippets.ok()) << new_snippets.status();
  auto expected_new = reference.GenerateSnippets(query, *new_hits, options);
  ASSERT_TRUE(expected_new.ok());
  EXPECT_EQ(Fingerprints(*new_snippets), Fingerprints(*expected_new));

  // Drain the old stream now: its pinned epoch still serves the OLD
  // content, byte-identically — and every snippet it Puts lands under the
  // retired instance's keys.
  XmlCorpus old_reference;
  ASSERT_TRUE(old_reference.AddDocument("data", GenerateStoresXml()).ok());
  auto expected_old = old_reference.GenerateSnippets(
      query, old_stream->page(), options, BatchOptions{});
  ASSERT_TRUE(expected_old.ok()) << expected_old.status();
  size_t drained = 0;
  while (auto event = old_stream->stream().Next()) {
    ASSERT_TRUE(event->snippet.ok()) << event->snippet.status();
    EXPECT_EQ(Fingerprint(*event->snippet),
              Fingerprint((*expected_old)[event->slot]));
    ++drained;
  }
  EXPECT_EQ(drained, old_stream->page().size());

  // The old stream's late Puts are in the cache now (residue under the
  // retired instance) — the new epoch must STILL serve fresh bytes.
  auto again = corpus.GenerateSnippets(query, *new_hits, options);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(Fingerprints(*again), Fingerprints(*expected_new));
}

}  // namespace
}  // namespace extract
