// Shared plumbing of the HTTP suites: a minimal blocking test client
// (connect, send raw bytes, read to EOF), a close-delimited response
// parser, an SSE frame splitter and a percent-encoding URL builder.
//
// Deliberately independent of src/http's parser: the tests exercise the
// server through a second, simpler implementation of the protocol, so a
// shared parsing bug cannot hide a wire-format regression.

#ifndef EXTRACT_TESTS_HTTP_TEST_UTIL_H_
#define EXTRACT_TESTS_HTTP_TEST_UTIL_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace extract {
namespace testing {

/// Connects to 127.0.0.1:port; returns -1 on failure.
inline int ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

inline bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads until EOF (the server closes after every response).
inline std::string RecvToEof(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      out.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  return out;
}

struct HttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< lower-cased names
  std::string body;                            ///< chunked decoded if needed
  bool valid = false;
};

/// Parses a full close-delimited HTTP/1.1 response, decoding chunked
/// transfer encoding when present.
inline HttpResponse ParseResponse(const std::string& raw) {
  HttpResponse response;
  size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return response;
  std::string head = raw.substr(0, head_end);
  std::string body = raw.substr(head_end + 4);

  size_t line_end = head.find("\r\n");
  std::string status_line =
      head.substr(0, line_end == std::string::npos ? head.size() : line_end);
  if (status_line.size() < 12 || status_line.compare(0, 5, "HTTP/") != 0) {
    return response;
  }
  response.status = std::atoi(status_line.c_str() + 9);

  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
    size_t vstart = colon + 1;
    while (vstart < line.size() && line[vstart] == ' ') ++vstart;
    response.headers[name] = line.substr(vstart);
  }

  auto te = response.headers.find("transfer-encoding");
  if (te != response.headers.end() && te->second == "chunked") {
    // Decode chunked framing.
    size_t at = 0;
    for (;;) {
      size_t eol = body.find("\r\n", at);
      if (eol == std::string::npos) return response;  // truncated
      size_t size = std::strtoull(body.c_str() + at, nullptr, 16);
      at = eol + 2;
      if (size == 0) break;
      if (at + size > body.size()) return response;  // truncated
      response.body.append(body, at, size);
      at += size + 2;  // skip chunk CRLF
    }
  } else {
    response.body = std::move(body);
  }
  response.valid = true;
  return response;
}

/// One round trip: send `request` raw, read to EOF, parse.
inline HttpResponse Fetch(uint16_t port, const std::string& request) {
  HttpResponse response;
  int fd = ConnectLoopback(port);
  if (fd < 0) return response;
  if (SendAll(fd, request)) response = ParseResponse(RecvToEof(fd));
  ::close(fd);
  return response;
}

/// Convenience GET with Connection: close.
inline HttpResponse Get(uint16_t port, const std::string& target,
                        const std::string& extra_headers = "") {
  return Fetch(port, "GET " + target + " HTTP/1.1\r\nHost: t\r\n" +
                         extra_headers + "\r\n");
}

/// Percent-encodes a query parameter value.
inline std::string UrlEncode(std::string_view s) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  for (unsigned char c : s) {
    if (std::isalnum(c) || c == '-' || c == '_' || c == '.' || c == '~') {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(hex[c >> 4]);
      out.push_back(hex[c & 0xF]);
    }
  }
  return out;
}

/// One parsed SSE frame: "event: name\nid: i\ndata: payload\n\n".
struct SseEvent {
  std::string event;
  std::string id;
  std::string data;
};

/// Splits a decoded SSE body into frames (blank-line separated).
inline std::vector<SseEvent> ParseSseBody(const std::string& body) {
  std::vector<SseEvent> events;
  SseEvent current;
  bool any_field = false;
  size_t pos = 0;
  while (pos <= body.size()) {
    size_t eol = body.find('\n', pos);
    std::string line = eol == std::string::npos
                           ? body.substr(pos)
                           : body.substr(pos, eol - pos);
    pos = eol == std::string::npos ? body.size() + 1 : eol + 1;
    if (line.empty()) {
      if (any_field) events.push_back(std::move(current));
      current = SseEvent();
      any_field = false;
      continue;
    }
    auto value_of = [&line](size_t prefix) {
      return line.substr(line.size() > prefix && line[prefix] == ' '
                             ? prefix + 1
                             : prefix);
    };
    if (line.rfind("event:", 0) == 0) {
      current.event = value_of(6);
      any_field = true;
    } else if (line.rfind("id:", 0) == 0) {
      current.id = value_of(3);
      any_field = true;
    } else if (line.rfind("data:", 0) == 0) {
      current.data = value_of(5);
      any_field = true;
    }
  }
  return events;
}

}  // namespace testing
}  // namespace extract

#endif  // EXTRACT_TESTS_HTTP_TEST_UTIL_H_
