#include "xpath/xpath.h"

#include <gtest/gtest.h>

#include "datagen/retailer_dataset.h"
#include "search/search_engine.h"
#include "xml/parser.h"

namespace extract {
namespace {

IndexedDocument MustBuild(std::string_view xml) {
  auto doc = ParseXml(xml);
  EXPECT_TRUE(doc.ok()) << doc.status();
  auto idx = IndexedDocument::Build(**doc);
  EXPECT_TRUE(idx.ok()) << idx.status();
  return std::move(*idx);
}

constexpr std::string_view kXml = R"(<db>
  <store><name>Levis</name><city>Houston</city></store>
  <store><name>ESprit</name><city>Austin</city></store>
  <misc><store><name>Nested</name></store></misc>
</db>)";

std::vector<std::string> Names(const IndexedDocument& doc,
                               const std::vector<NodeId>& nodes) {
  std::vector<std::string> out;
  for (NodeId n : nodes) {
    NodeId text = doc.sole_text_child(n);
    out.push_back(text == kInvalidNode ? doc.label_name(n) : doc.text(text));
  }
  return out;
}

TEST(XPathTest, RootStep) {
  IndexedDocument doc = MustBuild(kXml);
  auto r = EvaluateXPath(doc, "/db");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<NodeId>{0}));
  auto miss = EvaluateXPath(doc, "/other");
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->empty());
}

TEST(XPathTest, ChildAxis) {
  IndexedDocument doc = MustBuild(kXml);
  auto r = EvaluateXPath(doc, "/db/store/name");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(doc, *r), (std::vector<std::string>{"Levis", "ESprit"}));
}

TEST(XPathTest, DescendantAxis) {
  IndexedDocument doc = MustBuild(kXml);
  auto r = EvaluateXPath(doc, "//store/name");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(doc, *r),
            (std::vector<std::string>{"Levis", "ESprit", "Nested"}));
}

TEST(XPathTest, DescendantAxisMidPath) {
  IndexedDocument doc = MustBuild(kXml);
  auto r = EvaluateXPath(doc, "/db//name");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
}

TEST(XPathTest, Wildcard) {
  IndexedDocument doc = MustBuild(kXml);
  auto r = EvaluateXPath(doc, "/db/*");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);  // store, store, misc
  auto all = EvaluateXPath(doc, "//*");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), doc.num_elements());
}

TEST(XPathTest, PositionalPredicate) {
  IndexedDocument doc = MustBuild(kXml);
  auto r = EvaluateXPath(doc, "/db/store[2]/name");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(doc, *r), (std::vector<std::string>{"ESprit"}));
  auto out_of_range = EvaluateXPath(doc, "/db/store[9]");
  ASSERT_TRUE(out_of_range.ok());
  EXPECT_TRUE(out_of_range->empty());
}

TEST(XPathTest, ChildEqualsPredicate) {
  IndexedDocument doc = MustBuild(kXml);
  auto r = EvaluateXPath(doc, "//store[name=\"Levis\"]/city");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(doc, *r), (std::vector<std::string>{"Houston"}));
  auto none = EvaluateXPath(doc, "//store[name=\"Zara\"]");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(XPathTest, TextEqualsPredicate) {
  IndexedDocument doc = MustBuild(kXml);
  auto r = EvaluateXPath(doc, "//name[text()=\"Nested\"]");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(doc.label_name(r->front()), "name");
}

TEST(XPathTest, ChainedPredicates) {
  IndexedDocument doc = MustBuild(kXml);
  auto r = EvaluateXPath(doc, "//store[name=\"Levis\"][1]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

TEST(XPathTest, EvaluateFirst) {
  IndexedDocument doc = MustBuild(kXml);
  auto expr = XPathExpr::Parse("//store");
  ASSERT_TRUE(expr.ok());
  NodeId first = expr->EvaluateFirst(doc);
  ASSERT_NE(first, kInvalidNode);
  EXPECT_EQ(doc.label_name(first), "store");
  auto none = XPathExpr::Parse("//zzz");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->EvaluateFirst(doc), kInvalidNode);
}

TEST(XPathTest, OnRetailerDataset) {
  auto db = XmlDatabase::Load(GenerateRetailerXml());
  ASSERT_TRUE(db.ok());
  // Figure 1: 6 Houston stores in the Brook Brothers retailer (other
  // generated retailers may add their own Houston stores).
  auto houston = EvaluateXPath(
      db->index(),
      "/retailers/retailer[name=\"Brook Brothers\"]/store[city=\"Houston\"]");
  ASSERT_TRUE(houston.ok());
  EXPECT_EQ(houston->size(), 6u);
  auto bb = EvaluateXPath(
      db->index(), "/retailers/retailer[name=\"Brook Brothers\"]//clothes");
  ASSERT_TRUE(bb.ok());
  EXPECT_EQ(bb->size(), 1070u);  // Figure 1: 1070 clothes items
}

TEST(XPathErrorTest, BadSyntax) {
  IndexedDocument doc = MustBuild("<a><b>x</b></a>");
  for (const char* bad :
       {"", "a/b", "/", "//", "/a[", "/a[0]", "/a[b=]", "/a[b=\"x]",
        "/a[text(=\"x\")]", "/a/", "/a[]"}) {
    auto r = EvaluateXPath(doc, bad);
    EXPECT_FALSE(r.ok()) << "should reject: " << bad;
  }
}

}  // namespace
}  // namespace extract
