#include "snippet/snippet_service.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"
#include "search/corpus.h"
#include "snippet/pipeline.h"
#include "snippet/snippet_cache.h"
#include "xml/serializer.h"

namespace extract {
namespace {

struct Ctx {
  XmlDatabase db;
  Query query;
  std::vector<QueryResult> results;
};

Ctx RunQuery(std::string xml, const std::string& query_text) {
  auto db = XmlDatabase::Load(std::move(xml));
  EXPECT_TRUE(db.ok()) << db.status();
  Query query = Query::Parse(query_text);
  XSeekEngine engine;
  auto results = engine.Search(*db, query);
  EXPECT_TRUE(results.ok()) << results.status();
  return Ctx{std::move(*db), std::move(query), std::move(*results)};
}

// Byte-level equality of two snippets: selected nodes, coverage, key,
// return entity, IList and the serialized tree.
void ExpectSnippetsIdentical(const Snippet& a, const Snippet& b) {
  EXPECT_EQ(a.result_root, b.result_root);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.covered, b.covered);
  EXPECT_EQ(a.key.value, b.key.value);
  EXPECT_EQ(a.return_entity.label, b.return_entity.label);
  EXPECT_EQ(a.return_entity.evidence, b.return_entity.evidence);
  EXPECT_EQ(a.return_entity.instances, b.return_entity.instances);
  EXPECT_EQ(a.ilist.ToString(), b.ilist.ToString());
  ASSERT_NE(a.tree, nullptr);
  ASSERT_NE(b.tree, nullptr);
  EXPECT_EQ(WriteXml(*a.tree), WriteXml(*b.tree));
}

TEST(SnippetServiceTest, DefaultStagesMatchFigure4) {
  std::vector<std::string> names;
  for (const auto& stage : BuildDefaultStages()) {
    names.emplace_back(stage->name());
  }
  EXPECT_EQ(names, (std::vector<std::string>{
                       "feature-statistics", "return-entity", "result-key",
                       "ilist", "instance-selection", "materialize"}));
}

TEST(SnippetServiceTest, MatchesLegacyGeneratorOutput) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_FALSE(ctx.results.empty());
  SnippetService service(&ctx.db);
  SnippetGenerator generator(&ctx.db);
  SnippetOptions options;
  options.size_bound = 10;
  for (const QueryResult& result : ctx.results) {
    auto via_service = service.Generate(ctx.query, result, options);
    auto via_generator = generator.Generate(ctx.query, result, options);
    ASSERT_TRUE(via_service.ok()) << via_service.status();
    ASSERT_TRUE(via_generator.ok()) << via_generator.status();
    ExpectSnippetsIdentical(*via_service, *via_generator);
  }
}

TEST(SnippetServiceTest, ContextMemoizesPerResultScans) {
  Ctx ctx = RunQuery(GenerateRetailerXml(), "Texas apparel retailer");
  ASSERT_FALSE(ctx.results.empty());
  SnippetContext context(&ctx.db, ctx.query);

  const NodeId root = ctx.results[0].root;
  const FeatureStatistics& first = context.StatisticsFor(root);
  const FeatureStatistics& second = context.StatisticsFor(root);
  EXPECT_EQ(&first, &second) << "statistics must be computed once per root";
  EXPECT_EQ(context.statistics_cache().misses, 1u);
  EXPECT_EQ(context.statistics_cache().hits, 1u);

  // Re-generating the same result at different size bounds through one
  // context reuses the statistics AND the instance scan (the IList does
  // not depend on the bound).
  SnippetService service(&ctx.db);
  for (size_t bound : {4u, 8u, 16u}) {
    SnippetOptions options;
    options.size_bound = bound;
    auto snippet = service.Generate(context, ctx.results[0], options);
    ASSERT_TRUE(snippet.ok()) << snippet.status();
  }
  EXPECT_EQ(context.statistics_cache().misses, 1u);
  EXPECT_GE(context.statistics_cache().hits, 3u);
  EXPECT_EQ(context.instances_cache().misses, 1u);
  EXPECT_GE(context.instances_cache().hits, 2u);
}

TEST(SnippetServiceTest, SharedContextDoesNotChangeOutput) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_EQ(ctx.results.size(), 2u);
  SnippetService service(&ctx.db);
  SnippetOptions options;
  options.size_bound = 10;

  SnippetContext shared(&ctx.db, ctx.query);
  for (const QueryResult& result : ctx.results) {
    auto with_shared = service.Generate(shared, result, options);
    auto with_fresh = service.Generate(ctx.query, result, options);
    ASSERT_TRUE(with_shared.ok());
    ASSERT_TRUE(with_fresh.ok());
    ExpectSnippetsIdentical(*with_shared, *with_fresh);
  }
}

// Acceptance: parallel batches are byte-identical to the sequential path on
// the retailer and stores datasets.
TEST(SnippetServiceTest, ParallelBatchIdenticalToSequential) {
  struct Case {
    std::string xml;
    std::string query;
  };
  std::vector<Case> cases = {{GenerateRetailerXml(), "Texas apparel retailer"},
                             {GenerateStoresXml(), "store texas"}};
  for (Case& c : cases) {
    Ctx ctx = RunQuery(std::move(c.xml), c.query);
    ASSERT_FALSE(ctx.results.empty());
    SnippetService service(&ctx.db);
    SnippetOptions options;
    options.size_bound = 10;

    BatchOptions sequential;
    sequential.num_threads = 1;
    auto expected =
        service.GenerateBatch(ctx.query, ctx.results, options, sequential);
    ASSERT_TRUE(expected.ok()) << expected.status();
    ASSERT_EQ(expected->size(), ctx.results.size());

    for (size_t threads : {2u, 4u, 8u}) {
      BatchOptions parallel;
      parallel.num_threads = threads;
      auto got =
          service.GenerateBatch(ctx.query, ctx.results, options, parallel);
      ASSERT_TRUE(got.ok()) << got.status();
      ASSERT_EQ(got->size(), expected->size());
      for (size_t i = 0; i < got->size(); ++i) {
        ExpectSnippetsIdentical((*got)[i], (*expected)[i]);
      }
    }
  }
}

TEST(SnippetServiceTest, BatchOrderingIsDeterministic) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_EQ(ctx.results.size(), 2u);
  SnippetService service(&ctx.db);
  BatchOptions parallel;
  parallel.num_threads = 8;
  for (int round = 0; round < 10; ++round) {
    auto batch = service.GenerateBatch(ctx.query, ctx.results,
                                       SnippetOptions{}, parallel);
    ASSERT_TRUE(batch.ok());
    for (size_t i = 0; i < batch->size(); ++i) {
      EXPECT_EQ((*batch)[i].result_root, ctx.results[i].root);
    }
  }
}

// Regression (satellite): a bad result mid-batch must fail with a Status
// naming the failing index, identically on the sequential and parallel
// paths, instead of silently discarding completed work.
TEST(SnippetServiceTest, BatchFailureNamesTheFailingResultIndex) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_EQ(ctx.results.size(), 2u);
  std::vector<QueryResult> results = ctx.results;
  QueryResult bogus;
  bogus.root = static_cast<NodeId>(ctx.db.index().num_nodes() + 7);
  results.insert(results.begin() + 1, bogus);

  SnippetGenerator generator(&ctx.db);
  BatchOptions sequential;
  sequential.num_threads = 1;
  auto seq = generator.GenerateAll(ctx.query, results, SnippetOptions{},
                                   sequential);
  ASSERT_FALSE(seq.ok());
  EXPECT_EQ(seq.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(seq.status().message().find("result 1 of 3"), std::string::npos)
      << seq.status();

  BatchOptions parallel;
  parallel.num_threads = 8;
  auto par = generator.GenerateAll(ctx.query, results, SnippetOptions{},
                                   parallel);
  ASSERT_FALSE(par.ok());
  EXPECT_EQ(par.status(), seq.status())
      << "parallel and sequential must report the same failure";
}

TEST(SnippetServiceTest, CorpusGenerateSnippetsMatchesPerDocumentPath) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
  ASSERT_TRUE(corpus.AddDocument("retailer", GenerateRetailerXml()).ok());
  Query query = Query::Parse("texas");
  XSeekEngine engine;
  auto hits = corpus.SearchAll(query, engine);
  ASSERT_TRUE(hits.ok()) << hits.status();
  ASSERT_GT(hits->size(), 1u);

  SnippetOptions options;
  options.size_bound = 8;
  auto snippets = corpus.GenerateSnippets(query, *hits, options);
  ASSERT_TRUE(snippets.ok()) << snippets.status();
  ASSERT_EQ(snippets->size(), hits->size());

  for (size_t i = 0; i < hits->size(); ++i) {
    const XmlDatabase* db = corpus.Find((*hits)[i].document);
    ASSERT_NE(db, nullptr);
    SnippetService service(db);
    auto expected = service.Generate(query, (*hits)[i].result, options);
    ASSERT_TRUE(expected.ok());
    ExpectSnippetsIdentical((*snippets)[i], *expected);
  }
}

TEST(SnippetServiceTest, CorpusGenerateSnippetsUnknownDocument) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
  Query query = Query::Parse("texas");
  XSeekEngine engine;
  auto hits = corpus.SearchAll(query, engine);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  std::vector<CorpusResult> bad = *hits;
  bad[0].document = "missing";
  auto snippets = corpus.GenerateSnippets(query, bad, SnippetOptions{});
  ASSERT_FALSE(snippets.ok());
  EXPECT_EQ(snippets.status().code(), StatusCode::kNotFound);
  EXPECT_NE(snippets.status().message().find("result 0"), std::string::npos);
  EXPECT_NE(snippets.status().message().find("missing"), std::string::npos);
}

// Thread-safety smoke: hammer one corpus from wide batches repeatedly; the
// output must stay identical to the single-threaded run every time.
TEST(SnippetServiceTest, CorpusGenerateSnippetsThreadSafetySmoke) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
  ASSERT_TRUE(corpus.AddDocument("retailer", GenerateRetailerXml()).ok());
  Query query = Query::Parse("texas clothes");
  XSeekEngine engine;
  auto hits = corpus.SearchAll(query, engine);
  ASSERT_TRUE(hits.ok());
  ASSERT_GT(hits->size(), 2u);

  // Duplicate the page a few times so many workers hit the same contexts
  // and memoized entries concurrently.
  std::vector<CorpusResult> page;
  for (int copy = 0; copy < 4; ++copy) {
    page.insert(page.end(), hits->begin(), hits->end());
  }

  SnippetOptions options;
  options.size_bound = 9;
  BatchOptions sequential;
  sequential.num_threads = 1;
  auto expected = corpus.GenerateSnippets(query, page, options, sequential);
  ASSERT_TRUE(expected.ok());

  BatchOptions wide;
  wide.num_threads = 8;
  for (int round = 0; round < 5; ++round) {
    auto got = corpus.GenerateSnippets(query, page, options, wide);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_EQ(got->size(), expected->size());
    for (size_t i = 0; i < got->size(); ++i) {
      ExpectSnippetsIdentical((*got)[i], (*expected)[i]);
    }
  }
}

// --------------------------------------------------------------------------
// MakeBatchResultError: the shared error shape of every batch entry point.

TEST(MakeBatchResultErrorTest, ShapePreservesCodeAndInnerMessage) {
  Status inner = Status::InvalidArgument("bad root");
  Status shaped = MakeBatchResultError(1, 3, "", inner);
  EXPECT_EQ(shaped.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(shaped.message(), "result 1 of 3: bad root");

  Status with_extra =
      MakeBatchResultError(0, 2, " (document 'stores')",
                           Status::NotFound("unknown document 'stores'"));
  EXPECT_EQ(with_extra.code(), StatusCode::kNotFound);
  EXPECT_EQ(with_extra.message(),
            "result 0 of 2 (document 'stores'): unknown document 'stores'");
}

// A batch with a bogus result at index 1, shared by the entry-point shape
// tests below.
std::vector<QueryResult> WithBogusAt1(const Ctx& ctx) {
  std::vector<QueryResult> results = ctx.results;
  QueryResult bogus;
  bogus.root = static_cast<NodeId>(ctx.db.index().num_nodes() + 7);
  results.insert(results.begin() + 1, bogus);
  return results;
}

TEST(MakeBatchResultErrorTest, ServiceGenerateBatchUsesTheShape) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_EQ(ctx.results.size(), 2u);
  SnippetService service(&ctx.db);
  auto batch = service.GenerateBatch(ctx.query, WithBogusAt1(ctx),
                                     SnippetOptions{}, BatchOptions{});
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(batch.status().message().find("result 1 of 3: "), 0u)
      << batch.status();
}

TEST(MakeBatchResultErrorTest, GeneratorGenerateAllUsesTheShape) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_EQ(ctx.results.size(), 2u);
  SnippetGenerator generator(&ctx.db);
  auto all =
      generator.GenerateAll(ctx.query, WithBogusAt1(ctx), SnippetOptions{});
  ASSERT_FALSE(all.ok());
  EXPECT_EQ(all.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(all.status().message().find("result 1 of 3: "), 0u)
      << all.status();
}

TEST(MakeBatchResultErrorTest, CorpusGenerateSnippetsNamesTheDocument) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
  Query query = Query::Parse("texas");
  XSeekEngine engine;
  auto hits = corpus.SearchAll(query, engine);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  std::vector<CorpusResult> page = *hits;
  CorpusResult bogus;
  bogus.document = "stores";
  bogus.result.root = static_cast<NodeId>(
      corpus.Find("stores")->index().num_nodes() + 7);
  page.insert(page.begin() + 1, bogus);

  auto snippets = corpus.GenerateSnippets(query, page, SnippetOptions{});
  ASSERT_FALSE(snippets.ok());
  EXPECT_EQ(snippets.status().code(), StatusCode::kInvalidArgument);
  const std::string expected_prefix =
      "result 1 of " + std::to_string(page.size()) + " (document 'stores'): ";
  EXPECT_EQ(snippets.status().message().find(expected_prefix), 0u)
      << snippets.status();
}

TEST(MakeBatchResultErrorTest, CachedBatchPreservesTheFailingIndex) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_EQ(ctx.results.size(), 2u);
  SnippetService service(&ctx.db);
  SnippetCache cache;
  CachingSnippetService caching(&service, &cache, "stores");
  std::vector<QueryResult> results = WithBogusAt1(ctx);

  // Cold: every slot is a miss; the error names the batch-level index.
  auto cold =
      caching.GenerateBatch(ctx.query, results, SnippetOptions{}, BatchOptions{});
  ASSERT_FALSE(cold.ok());
  EXPECT_EQ(cold.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cold.status().message().find("result 1 of 3: "), 0u)
      << cold.status();

  // Warm the valid results, then fail again: the miss subset is now just
  // {1}, but the error must still name index 1 of 3, identical to the
  // uncached path.
  auto warmup = caching.GenerateBatch(ctx.query, ctx.results, SnippetOptions{},
                                      BatchOptions{});
  ASSERT_TRUE(warmup.ok()) << warmup.status();
  auto warm =
      caching.GenerateBatch(ctx.query, results, SnippetOptions{}, BatchOptions{});
  ASSERT_FALSE(warm.ok());
  EXPECT_EQ(warm.status(), cold.status());

  auto uncached = service.GenerateBatch(ctx.query, results, SnippetOptions{},
                                        BatchOptions{});
  ASSERT_FALSE(uncached.ok());
  EXPECT_EQ(warm.status(), uncached.status())
      << "cached and uncached batches must report identical failures";
}

TEST(MakeBatchResultErrorTest, CachedCorpusPathPreservesIndexAndDocument) {
  XmlCorpus corpus;
  corpus.EnableSnippetCache();
  ASSERT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
  Query query = Query::Parse("texas");
  XSeekEngine engine;
  auto hits = corpus.SearchAll(query, engine);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());

  // Warm the valid page first so the failing request runs against hits.
  ASSERT_TRUE(corpus.GenerateSnippets(query, *hits, SnippetOptions{}).ok());

  std::vector<CorpusResult> page = *hits;
  CorpusResult bogus;
  bogus.document = "stores";
  bogus.result.root = static_cast<NodeId>(
      corpus.Find("stores")->index().num_nodes() + 7);
  page.insert(page.begin() + 1, bogus);
  auto snippets = corpus.GenerateSnippets(query, page, SnippetOptions{});
  ASSERT_FALSE(snippets.ok());
  const std::string expected_prefix =
      "result 1 of " + std::to_string(page.size()) + " (document 'stores'): ";
  EXPECT_EQ(snippets.status().message().find(expected_prefix), 0u)
      << snippets.status();
}

TEST(SnippetServiceTest, StageStatsCountEveryStageRun) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  SnippetService service(&ctx.db);
  EXPECT_TRUE(service.StageStatsSnapshot()[0].calls == 0);

  SnippetContext context(&ctx.db, ctx.query);
  const size_t generations = 3;
  for (size_t g = 0; g < generations; ++g) {
    ASSERT_TRUE(
        service.Generate(context, ctx.results[0], SnippetOptions{}).ok());
  }
  std::vector<StageStat> stats = service.StageStatsSnapshot();
  ASSERT_EQ(stats.size(), service.stages().size());
  for (size_t s = 0; s < stats.size(); ++s) {
    EXPECT_EQ(stats[s].name, service.stages()[s]->name());
    EXPECT_EQ(stats[s].calls, generations) << stats[s].name;
    EXPECT_GE(stats[s].total_ns, stats[s].max_ns) << stats[s].name;
  }
  service.ResetStageStats();
  for (const StageStat& stat : service.StageStatsSnapshot()) {
    EXPECT_EQ(stat.calls, 0u);
    EXPECT_EQ(stat.total_ns, 0u);
    EXPECT_EQ(stat.max_ns, 0u);
  }
}

TEST(SnippetServiceTest, StageStatsAccumulateAcrossParallelBatches) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_GT(ctx.results.size(), 1u);
  SnippetService service(&ctx.db);
  BatchOptions batch;
  batch.num_threads = 4;
  ASSERT_TRUE(
      service.GenerateBatch(ctx.query, ctx.results, SnippetOptions{}, batch)
          .ok());
  for (const StageStat& stat : service.StageStatsSnapshot()) {
    EXPECT_EQ(stat.calls, ctx.results.size()) << stat.name;
  }
}

TEST(StageStatsRegistryTest, MergeSumsTotalsAndMaxesPeaks) {
  StageStatsRegistry registry;
  registry.Record("search", 100);
  registry.Record("search", 300);
  registry.Merge({StageStat{"search", 2, 500, 250},
                  StageStat{"ilist", 1, 40, 40},
                  StageStat{"never-ran", 0, 0, 0}});
  std::vector<StageStat> stats = registry.Snapshot();
  ASSERT_EQ(stats.size(), 2u);  // never-ran stages are not materialized
  EXPECT_EQ(stats[0].name, "search");
  EXPECT_EQ(stats[0].calls, 4u);
  EXPECT_EQ(stats[0].total_ns, 900u);
  EXPECT_EQ(stats[0].max_ns, 300u);
  EXPECT_EQ(stats[1].name, "ilist");
  EXPECT_EQ(stats[1].calls, 1u);
  registry.Reset();
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(StageStatsTest, CorpusAggregatesSnippetStagesAcrossDocuments) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("retailer", GenerateRetailerXml()).ok());
  ASSERT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
  XSeekEngine engine;
  Query query = Query::Parse("texas");
  auto hits = corpus.SearchAll(query, engine);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  ASSERT_TRUE(corpus.GenerateSnippets(query, *hits, SnippetOptions{}).ok());

  std::vector<StageStat> stats = corpus.StageStatsSnapshot();
  ASSERT_FALSE(stats.empty());
  EXPECT_EQ(stats[0].name, "search");
  bool saw_selection = false;
  for (const StageStat& stat : stats) {
    if (stat.name == "instance-selection") {
      saw_selection = true;
      // Every merged hit ran the pipeline once, across both documents.
      EXPECT_EQ(stat.calls, hits->size());
    }
  }
  EXPECT_TRUE(saw_selection);
}

TEST(SnippetServiceTest, StageErrorsNameTheStage) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  // A custom sequence missing the statistics stage: the ilist stage must
  // fail with a FailedPrecondition naming itself.
  std::vector<std::unique_ptr<SnippetStage>> stages;
  stages.push_back(std::make_unique<IListStage>());
  SnippetService service(&ctx.db, std::move(stages));
  SnippetContext context(&ctx.db, ctx.query);
  auto snippet = service.Generate(context, ctx.results[0], SnippetOptions{});
  ASSERT_FALSE(snippet.ok());
  EXPECT_EQ(snippet.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(snippet.status().message().find("ilist stage"), std::string::npos)
      << snippet.status();
}

}  // namespace
}  // namespace extract
