#include "snippet/feature_statistics.h"

#include <gtest/gtest.h>

#include "datagen/retailer_dataset.h"
#include "search/search_engine.h"

namespace extract {
namespace {

struct Ctx {
  XmlDatabase db;
  NodeId result_root;
  FeatureStatistics stats;
};

Ctx LoadPaperResult() {
  auto db = XmlDatabase::Load(GenerateRetailerXml());
  EXPECT_TRUE(db.ok()) << db.status();
  XSeekEngine engine;
  auto results = engine.Search(*db, Query::Parse("Texas apparel retailer"));
  EXPECT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);
  NodeId root = results->front().root;
  FeatureStatistics stats =
      FeatureStatistics::Compute(db->index(), db->classification(), root);
  return Ctx{std::move(*db), root, std::move(stats)};
}

Feature F(const XmlDatabase& db, const char* e, const char* a, const char* v) {
  return Feature{{db.index().labels().Find(e), db.index().labels().Find(a)},
                 v};
}

// ---- The paper's worked example, §2.3 / Figure 1, numbers verified exactly.

TEST(FeatureStatisticsPaperTest, CityCounts) {
  Ctx ctx = LoadPaperResult();
  FeatureType city{ctx.db.index().labels().Find("store"),
                   ctx.db.index().labels().Find("city")};
  const auto& stats = ctx.stats.types().at(city);
  EXPECT_EQ(stats.total_occurrences, 10u);      // N(store, city)
  EXPECT_EQ(stats.domain_size(), 5u);           // D(store, city)
  EXPECT_EQ(stats.value_occurrences.at("Houston"), 6u);
  EXPECT_EQ(stats.value_occurrences.at("Austin"), 1u);
}

TEST(FeatureStatisticsPaperTest, FittingCounts) {
  Ctx ctx = LoadPaperResult();
  FeatureType fitting{ctx.db.index().labels().Find("clothes"),
                      ctx.db.index().labels().Find("fitting")};
  const auto& stats = ctx.stats.types().at(fitting);
  EXPECT_EQ(stats.total_occurrences, 1000u);
  EXPECT_EQ(stats.domain_size(), 3u);
  EXPECT_EQ(stats.value_occurrences.at("man"), 600u);
  EXPECT_EQ(stats.value_occurrences.at("woman"), 360u);
  EXPECT_EQ(stats.value_occurrences.at("children"), 40u);
}

TEST(FeatureStatisticsPaperTest, SituationCounts) {
  Ctx ctx = LoadPaperResult();
  FeatureType situation{ctx.db.index().labels().Find("clothes"),
                        ctx.db.index().labels().Find("situation")};
  const auto& stats = ctx.stats.types().at(situation);
  EXPECT_EQ(stats.total_occurrences, 1000u);
  EXPECT_EQ(stats.domain_size(), 2u);
  EXPECT_EQ(stats.value_occurrences.at("casual"), 700u);
  EXPECT_EQ(stats.value_occurrences.at("formal"), 300u);
}

TEST(FeatureStatisticsPaperTest, CategoryCounts) {
  Ctx ctx = LoadPaperResult();
  FeatureType category{ctx.db.index().labels().Find("clothes"),
                       ctx.db.index().labels().Find("category")};
  const auto& stats = ctx.stats.types().at(category);
  EXPECT_EQ(stats.total_occurrences, 1070u);
  EXPECT_EQ(stats.domain_size(), 11u);  // 4 named + 7 other categories
  EXPECT_EQ(stats.value_occurrences.at("outwear"), 220u);
  EXPECT_EQ(stats.value_occurrences.at("suit"), 120u);
  EXPECT_EQ(stats.value_occurrences.at("skirt"), 80u);
  EXPECT_EQ(stats.value_occurrences.at("sweaters"), 70u);
}

TEST(FeatureStatisticsPaperTest, DominanceScores) {
  Ctx ctx = LoadPaperResult();
  const XmlDatabase& db = ctx.db;
  // DS(Houston) = 6 / (10/5) = 3.0 — the paper's §2.3 numbers.
  EXPECT_DOUBLE_EQ(ctx.stats.DominanceScore(F(db, "store", "city", "Houston")),
                   3.0);
  EXPECT_DOUBLE_EQ(ctx.stats.DominanceScore(F(db, "clothes", "fitting", "man")),
                   1.8);
  EXPECT_NEAR(ctx.stats.DominanceScore(F(db, "clothes", "fitting", "woman")),
              1.08, 1e-9);
  EXPECT_DOUBLE_EQ(
      ctx.stats.DominanceScore(F(db, "clothes", "situation", "casual")), 1.4);
  EXPECT_NEAR(ctx.stats.DominanceScore(F(db, "clothes", "category", "outwear")),
              220.0 / (1070.0 / 11.0), 1e-9);  // ≈ 2.26
  EXPECT_NEAR(ctx.stats.DominanceScore(F(db, "clothes", "category", "suit")),
              120.0 / (1070.0 / 11.0), 1e-9);  // ≈ 1.23
}

TEST(FeatureStatisticsPaperTest, DominanceDecisions) {
  Ctx ctx = LoadPaperResult();
  const XmlDatabase& db = ctx.db;
  EXPECT_TRUE(ctx.stats.IsDominant(F(db, "store", "city", "Houston")));
  EXPECT_TRUE(ctx.stats.IsDominant(F(db, "clothes", "fitting", "man")));
  EXPECT_TRUE(ctx.stats.IsDominant(F(db, "clothes", "fitting", "woman")));
  EXPECT_TRUE(ctx.stats.IsDominant(F(db, "clothes", "situation", "casual")));
  EXPECT_TRUE(ctx.stats.IsDominant(F(db, "clothes", "category", "outwear")));
  EXPECT_TRUE(ctx.stats.IsDominant(F(db, "clothes", "category", "suit")));
  // Not dominant per the paper: children, formal, skirt, sweaters, Austin.
  EXPECT_FALSE(ctx.stats.IsDominant(F(db, "clothes", "fitting", "children")));
  EXPECT_FALSE(ctx.stats.IsDominant(F(db, "clothes", "situation", "formal")));
  EXPECT_FALSE(ctx.stats.IsDominant(F(db, "clothes", "category", "skirt")));
  EXPECT_FALSE(ctx.stats.IsDominant(F(db, "clothes", "category", "sweaters")));
  EXPECT_FALSE(ctx.stats.IsDominant(F(db, "store", "city", "Austin")));
}

TEST(FeatureStatisticsPaperTest, DomainSizeOneIsTriviallyDominant) {
  Ctx ctx = LoadPaperResult();
  const XmlDatabase& db = ctx.db;
  // Every store is in Texas: D(store, state) == 1; DS == 1 but dominant.
  Feature texas = F(db, "store", "state", "Texas");
  EXPECT_DOUBLE_EQ(ctx.stats.DominanceScore(texas), 1.0);
  EXPECT_TRUE(ctx.stats.IsDominant(texas));
}

// ------------------------------------------------------------- unit cases

TEST(FeatureStatisticsTest, SmallHandComputedExample) {
  auto db = XmlDatabase::Load(R"(<db>
    <s><c>red</c></s><s><c>red</c></s><s><c>blue</c></s><s><c>green</c></s>
  </db>)");
  ASSERT_TRUE(db.ok());
  FeatureStatistics stats = FeatureStatistics::Compute(
      db->index(), db->classification(), db->index().root());
  Feature red = F(*db, "s", "c", "red");
  // N=4, D=3, N(red)=2 -> DS = 2/(4/3) = 1.5.
  EXPECT_DOUBLE_EQ(stats.DominanceScore(red), 1.5);
  EXPECT_TRUE(stats.IsDominant(red));
  Feature blue = F(*db, "s", "c", "blue");
  EXPECT_DOUBLE_EQ(stats.DominanceScore(blue), 0.75);
  EXPECT_FALSE(stats.IsDominant(blue));
  EXPECT_EQ(stats.Occurrences(red), 2u);
  EXPECT_EQ(stats.Occurrences(blue), 1u);
}

TEST(FeatureStatisticsTest, BoundaryScoreExactlyOneNotDominant) {
  // Two values, one occurrence each: DS == 1.0 for both; D != 1 -> neither
  // dominant (exact integer arithmetic, no floating point wobble).
  auto db = XmlDatabase::Load("<db><s><c>x</c></s><s><c>y</c></s></db>");
  ASSERT_TRUE(db.ok());
  FeatureStatistics stats = FeatureStatistics::Compute(
      db->index(), db->classification(), db->index().root());
  Feature x = F(*db, "s", "c", "x");
  EXPECT_DOUBLE_EQ(stats.DominanceScore(x), 1.0);
  EXPECT_FALSE(stats.IsDominant(x));
}

TEST(FeatureStatisticsTest, AbsentFeatureScoresZero) {
  auto db = XmlDatabase::Load("<db><s><c>x</c></s><s><c>x</c></s></db>");
  ASSERT_TRUE(db.ok());
  FeatureStatistics stats = FeatureStatistics::Compute(
      db->index(), db->classification(), db->index().root());
  EXPECT_EQ(stats.DominanceScore(F(*db, "s", "c", "nope")), 0.0);
  EXPECT_FALSE(stats.IsDominant(F(*db, "s", "c", "nope")));
  EXPECT_EQ(stats.Occurrences(F(*db, "s", "c", "nope")), 0u);
}

TEST(FeatureStatisticsTest, AttributeUnderConnectionNodeAttributesToEntity) {
  // <info> is a connection node between store and its attribute city:
  // the feature is still (store, city, v).
  auto db = XmlDatabase::Load(R"(<db>
    <store><info><city>H</city></info></store>
    <store><info><city>H</city></info></store>
  </db>)");
  ASSERT_TRUE(db.ok());
  FeatureStatistics stats = FeatureStatistics::Compute(
      db->index(), db->classification(), db->index().root());
  FeatureType type{db->index().labels().Find("store"),
                   db->index().labels().Find("city")};
  ASSERT_TRUE(stats.types().count(type));
  EXPECT_EQ(stats.types().at(type).total_occurrences, 2u);
}

TEST(FeatureStatisticsTest, SumOfScoresEqualsDomainSize) {
  // Property: sum over values v of DS((e,a,v)) == D(e,a), since
  // sum N(v) == N and each is divided by N/D.
  Ctx ctx = LoadPaperResult();
  for (const auto& [type, type_stats] : ctx.stats.types()) {
    double sum = 0.0;
    for (const auto& [value, count] : type_stats.value_occurrences) {
      sum += ctx.stats.DominanceScore(Feature{type, value});
    }
    EXPECT_NEAR(sum, static_cast<double>(type_stats.domain_size()), 1e-6);
  }
}

TEST(FeatureStatisticsTest, RenderAggregatesRareValues) {
  Ctx ctx = LoadPaperResult();
  std::string out = ctx.stats.Render(ctx.db.index().labels(), 4);
  EXPECT_NE(out.find("Houston: 6"), std::string::npos);
  EXPECT_NE(out.find("man: 600"), std::string::npos);
  EXPECT_NE(out.find("other ("), std::string::npos);
}

}  // namespace
}  // namespace extract
