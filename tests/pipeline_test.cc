#include "snippet/pipeline.h"

#include <gtest/gtest.h>

#include <set>

#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"
#include "xml/serializer.h"

namespace extract {
namespace {

struct Ctx {
  XmlDatabase db;
  Query query;
  std::vector<QueryResult> results;
};

Ctx RunQuery(std::string xml, const std::string& query_text) {
  auto db = XmlDatabase::Load(std::move(xml));
  EXPECT_TRUE(db.ok()) << db.status();
  Query query = Query::Parse(query_text);
  XSeekEngine engine;
  auto results = engine.Search(*db, query);
  EXPECT_TRUE(results.ok()) << results.status();
  return Ctx{std::move(*db), std::move(query), std::move(*results)};
}

// True iff the snippet tree contains an element `tag` with text `value`.
bool TreeContains(const XmlNode& node, const std::string& tag,
                  const std::string& value) {
  if (node.kind() == XmlNodeKind::kElement && node.name() == tag &&
      node.InnerText() == value) {
    return true;
  }
  for (const auto& child : node.children()) {
    if (TreeContains(*child, tag, value)) return true;
  }
  return false;
}

TEST(PipelineTest, PaperFigure2SnippetContents) {
  // With a budget comparable to Figure 2 (~21 edges), the snippet must show
  // the key (Brook Brothers), the product (apparel), a Texas state, a
  // Houston city, and the top dominant features.
  Ctx ctx = RunQuery(GenerateRetailerXml(), "Texas, apparel, retailer");
  ASSERT_EQ(ctx.results.size(), 1u);
  SnippetGenerator generator(&ctx.db);
  SnippetOptions options;
  options.size_bound = 21;
  auto snippet = generator.Generate(ctx.query, ctx.results[0], options);
  ASSERT_TRUE(snippet.ok()) << snippet.status();
  EXPECT_LE(snippet->edges(), 21u);
  ASSERT_NE(snippet->tree, nullptr);
  EXPECT_EQ(snippet->tree->name(), "retailer");
  EXPECT_TRUE(TreeContains(*snippet->tree, "name", "Brook Brothers"));
  EXPECT_TRUE(TreeContains(*snippet->tree, "product", "apparel"));
  EXPECT_TRUE(TreeContains(*snippet->tree, "state", "Texas"));
  EXPECT_TRUE(TreeContains(*snippet->tree, "city", "Houston"));
  EXPECT_TRUE(TreeContains(*snippet->tree, "category", "outwear"));
  EXPECT_TRUE(TreeContains(*snippet->tree, "fitting", "man"));
}

TEST(PipelineTest, SnippetNeverExceedsBound) {
  Ctx ctx = RunQuery(GenerateRetailerXml(), "Texas apparel retailer");
  SnippetGenerator generator(&ctx.db);
  for (size_t bound : {0u, 1u, 2u, 4u, 6u, 10u, 16u, 30u, 100u}) {
    SnippetOptions options;
    options.size_bound = bound;
    auto snippet = generator.Generate(ctx.query, ctx.results[0], options);
    ASSERT_TRUE(snippet.ok());
    EXPECT_LE(snippet->edges(), bound) << "bound " << bound;
    EXPECT_EQ(snippet->tree->CountEdges(), snippet->edges());
  }
}

TEST(PipelineTest, CoverageMonotoneInBound) {
  Ctx ctx = RunQuery(GenerateRetailerXml(), "Texas apparel retailer");
  SnippetGenerator generator(&ctx.db);
  size_t prev = 0;
  for (size_t bound : {0u, 2u, 4u, 8u, 12u, 16u, 24u, 40u}) {
    SnippetOptions options;
    options.size_bound = bound;
    auto snippet = generator.Generate(ctx.query, ctx.results[0], options);
    ASSERT_TRUE(snippet.ok());
    size_t covered = snippet->covered_count();
    EXPECT_GE(covered, prev) << "bound " << bound;
    prev = covered;
  }
}

TEST(PipelineTest, LargeBoundCoversWholeIList) {
  Ctx ctx = RunQuery(GenerateRetailerXml(), "Texas apparel retailer");
  SnippetGenerator generator(&ctx.db);
  SnippetOptions options;
  options.size_bound = 100000;
  auto snippet = generator.Generate(ctx.query, ctx.results[0], options);
  ASSERT_TRUE(snippet.ok());
  EXPECT_EQ(snippet->covered_count(), snippet->ilist.size());
}

TEST(PipelineTest, Figure5StoreTexasSnippets) {
  // §4: the two results are keyed Levis vs ESprit, and the snippets convey
  // "Levis features jeans" / "ESprit focuses on outwear". (Our IList packs
  // the keyword, entity and key paths first, so the category feature enters
  // the snippet at bound 10; the demo's bound-6 screenshot reflects a
  // slightly different display encoding of attribute values.)
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_EQ(ctx.results.size(), 2u);
  SnippetGenerator generator(&ctx.db);
  SnippetOptions options;
  options.size_bound = 10;
  auto snippets = generator.GenerateAll(ctx.query, ctx.results, options);
  ASSERT_TRUE(snippets.ok());
  ASSERT_EQ(snippets->size(), 2u);

  const Snippet& levis = (*snippets)[0];
  EXPECT_LE(levis.edges(), 10u);
  EXPECT_EQ(levis.key.value, "Levis");
  EXPECT_TRUE(TreeContains(*levis.tree, "name", "Levis"));
  EXPECT_TRUE(TreeContains(*levis.tree, "category", "jeans"));

  const Snippet& esprit = (*snippets)[1];
  EXPECT_EQ(esprit.key.value, "ESprit");
  EXPECT_TRUE(TreeContains(*esprit.tree, "name", "ESprit"));
  EXPECT_TRUE(TreeContains(*esprit.tree, "category", "outwear"));

  // At the demo's bound of 6 the snippets still stay within budget and are
  // keyed distinctly.
  options.size_bound = 6;
  auto small = generator.GenerateAll(ctx.query, ctx.results, options);
  ASSERT_TRUE(small.ok());
  EXPECT_LE((*small)[0].edges(), 6u);
  EXPECT_TRUE(TreeContains(*(*small)[0].tree, "name", "Levis"));
  EXPECT_TRUE(TreeContains(*(*small)[1].tree, "name", "ESprit"));
}

TEST(PipelineTest, SnippetIsSubtreeOfResult) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  SnippetGenerator generator(&ctx.db);
  SnippetOptions options;
  options.size_bound = 8;
  for (const QueryResult& result : ctx.results) {
    auto snippet = generator.Generate(ctx.query, result, options);
    ASSERT_TRUE(snippet.ok());
    for (NodeId n : snippet->nodes) {
      EXPECT_TRUE(ctx.db.index().IsAncestorOrSelf(result.root, n));
    }
    // Closed under parents.
    std::set<NodeId> set(snippet->nodes.begin(), snippet->nodes.end());
    for (NodeId n : snippet->nodes) {
      if (n != result.root) EXPECT_TRUE(set.count(ctx.db.index().parent(n)));
    }
  }
}

TEST(PipelineTest, ExactSelectorWithinPipeline) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  SnippetGenerator generator(&ctx.db);
  SnippetOptions greedy_options;
  greedy_options.size_bound = 6;
  SnippetOptions exact_options = greedy_options;
  exact_options.use_exact_selector = true;
  exact_options.features.max_features = 4;  // keep B&B small
  greedy_options.features.max_features = 4;
  auto greedy = generator.Generate(ctx.query, ctx.results[0], greedy_options);
  auto exact = generator.Generate(ctx.query, ctx.results[0], exact_options);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_GE(exact->covered_count(), greedy->covered_count());
  EXPECT_LE(exact->edges(), 6u);
}

TEST(PipelineTest, InvalidResultRootRejected) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  SnippetGenerator generator(&ctx.db);
  QueryResult bogus;
  bogus.root = kInvalidNode;
  EXPECT_EQ(generator.Generate(ctx.query, bogus, SnippetOptions{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  bogus.root = static_cast<NodeId>(ctx.db.index().num_nodes() + 5);
  EXPECT_FALSE(generator.Generate(ctx.query, bogus, SnippetOptions{}).ok());
}

TEST(PipelineTest, GenerateAllNamesFailingResultIndex) {
  // Regression: a bad result mid-batch used to discard the index of the
  // failure; the Status must now say which result failed.
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  std::vector<QueryResult> results = ctx.results;
  QueryResult bogus;
  bogus.root = kInvalidNode;
  results.push_back(bogus);
  SnippetGenerator generator(&ctx.db);
  auto snippets = generator.GenerateAll(ctx.query, results, SnippetOptions{});
  ASSERT_FALSE(snippets.ok());
  EXPECT_EQ(snippets.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(snippets.status().message().find("result 2 of 3"),
            std::string::npos)
      << snippets.status();
}

TEST(PipelineTest, ZeroBoundYieldsRootOnlySnippet) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  SnippetGenerator generator(&ctx.db);
  SnippetOptions options;
  options.size_bound = 0;
  auto snippet = generator.Generate(ctx.query, ctx.results[0], options);
  ASSERT_TRUE(snippet.ok());
  EXPECT_EQ(snippet->edges(), 0u);
  EXPECT_EQ(WriteXml(*snippet->tree), "<store/>");
  // The keyword "store" (tag of the root) is still covered at zero cost.
  ASSERT_FALSE(snippet->covered.empty());
  EXPECT_TRUE(snippet->covered[0]);
}

}  // namespace
}  // namespace extract
