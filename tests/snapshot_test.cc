#include "search/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "datagen/movies_dataset.h"
#include "datagen/retailer_dataset.h"
#include "snippet/pipeline.h"

namespace extract {
namespace {

TEST(SnapshotTest, RoundTripPreservesDocument) {
  auto db = XmlDatabase::Load(GenerateRetailerXml());
  ASSERT_TRUE(db.ok());
  std::string bytes = SaveDatabaseSnapshot(*db);
  auto restored = LoadDatabaseSnapshot(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();

  const IndexedDocument& a = db->index();
  const IndexedDocument& b = restored->index();
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_elements(), b.num_elements());
  for (NodeId n = 0; n < static_cast<NodeId>(a.num_nodes()); ++n) {
    EXPECT_EQ(a.parent(n), b.parent(n));
    EXPECT_EQ(a.kind(n), b.kind(n));
    EXPECT_EQ(a.depth(n), b.depth(n));
    EXPECT_EQ(a.subtree_end(n), b.subtree_end(n));
    EXPECT_EQ(CompareDewey(a.dewey(n), b.dewey(n)), 0);
    if (a.is_element(n)) {
      EXPECT_EQ(a.label_name(n), b.label_name(n));
    } else {
      EXPECT_EQ(a.text(n), b.text(n));
    }
  }
}

TEST(SnapshotTest, RoundTripPreservesDtdAndClassification) {
  auto db = XmlDatabase::Load(GenerateRetailerXml());
  ASSERT_TRUE(db.ok());
  auto restored = LoadDatabaseSnapshot(SaveDatabaseSnapshot(*db));
  ASSERT_TRUE(restored.ok());
  ASSERT_NE(restored->dtd(), nullptr);
  EXPECT_EQ(restored->dtd()->root_name(), "retailers");
  EXPECT_TRUE(restored->dtd()->IsStarChild("retailers", "retailer"));
  // Derived structures rebuilt identically: same entity labels & counts.
  EXPECT_EQ(db->classification().entity_labels().size(),
            restored->classification().entity_labels().size());
  EXPECT_EQ(db->classification().CountCategory(NodeCategory::kEntity),
            restored->classification().CountCategory(NodeCategory::kEntity));
  EXPECT_EQ(db->inverted().vocabulary_size(),
            restored->inverted().vocabulary_size());
  EXPECT_EQ(db->inverted().total_postings(),
            restored->inverted().total_postings());
}

TEST(SnapshotTest, NoDtdRoundTrip) {
  RetailerDatasetOptions options;
  options.include_dtd = false;
  auto db = XmlDatabase::Load(GenerateRetailerXml(options));
  ASSERT_TRUE(db.ok());
  auto restored = LoadDatabaseSnapshot(SaveDatabaseSnapshot(*db));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->dtd(), nullptr);
}

TEST(SnapshotTest, SearchAndSnippetsIdenticalAfterReload) {
  auto db = XmlDatabase::Load(GenerateRetailerXml());
  ASSERT_TRUE(db.ok());
  auto restored = LoadDatabaseSnapshot(SaveDatabaseSnapshot(*db));
  ASSERT_TRUE(restored.ok());

  Query query = Query::Parse("Texas apparel retailer");
  XSeekEngine engine;
  auto results_a = engine.Search(*db, query);
  auto results_b = engine.Search(*restored, query);
  ASSERT_TRUE(results_a.ok());
  ASSERT_TRUE(results_b.ok());
  ASSERT_EQ(results_a->size(), results_b->size());

  SnippetGenerator gen_a(&*db);
  SnippetGenerator gen_b(&*restored);
  SnippetOptions options;
  options.size_bound = 15;
  auto snip_a = gen_a.Generate(query, results_a->front(), options);
  auto snip_b = gen_b.Generate(query, results_b->front(), options);
  ASSERT_TRUE(snip_a.ok());
  ASSERT_TRUE(snip_b.ok());
  EXPECT_EQ(snip_a->ilist.ToString(), snip_b->ilist.ToString());
  EXPECT_EQ(snip_a->nodes, snip_b->nodes);
}

TEST(SnapshotTest, RejectsBadMagic) {
  auto db = XmlDatabase::Load("<a><b>x</b></a>");
  ASSERT_TRUE(db.ok());
  std::string bytes = SaveDatabaseSnapshot(*db);
  bytes[0] = 'Y';
  EXPECT_EQ(LoadDatabaseSnapshot(bytes).status().code(),
            StatusCode::kParseError);
}

TEST(SnapshotTest, RejectsBadVersion) {
  auto db = XmlDatabase::Load("<a><b>x</b></a>");
  ASSERT_TRUE(db.ok());
  std::string bytes = SaveDatabaseSnapshot(*db);
  bytes[4] = 99;  // version field
  EXPECT_FALSE(LoadDatabaseSnapshot(bytes).ok());
}

TEST(SnapshotTest, RejectsCorruptPayload) {
  auto db = XmlDatabase::Load("<a><b>x</b></a>");
  ASSERT_TRUE(db.ok());
  std::string bytes = SaveDatabaseSnapshot(*db);
  bytes[bytes.size() / 2] ^= 0x5A;
  auto restored = LoadDatabaseSnapshot(bytes);
  EXPECT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("checksum"), std::string::npos);
}

TEST(SnapshotTest, RejectsTruncation) {
  auto db = XmlDatabase::Load("<a><b>x</b></a>");
  ASSERT_TRUE(db.ok());
  std::string bytes = SaveDatabaseSnapshot(*db);
  for (size_t keep : {size_t{0}, size_t{3}, size_t{8}, size_t{15},
                      bytes.size() - 1}) {
    EXPECT_FALSE(LoadDatabaseSnapshot(bytes.substr(0, keep)).ok())
        << "kept " << keep;
  }
}

TEST(SnapshotTest, FileRoundTrip) {
  auto db = XmlDatabase::Load(GenerateMoviesXml());
  ASSERT_TRUE(db.ok());
  std::string path = ::testing::TempDir() + "/extract_snapshot_test.bin";
  ASSERT_TRUE(SaveDatabaseSnapshotToFile(*db, path).ok());
  auto restored = LoadDatabaseSnapshotFromFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->index().num_nodes(), db->index().num_nodes());
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadDatabaseSnapshotFromFile("/nonexistent/path.bin")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(FnvTest, KnownValues) {
  // FNV-1a 64 test vectors.
  EXPECT_EQ(internal::Fnv1a(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(internal::Fnv1a("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_NE(internal::Fnv1a("ab"), internal::Fnv1a("ba"));
}

TEST(FromFlatColumnsTest, RejectsInconsistentColumns) {
  LabelTable labels;
  labels.Intern("a");
  // Size mismatch.
  EXPECT_FALSE(IndexedDocument::FromFlatColumns(
                   labels, {kInvalidNode}, {0, 0},
                   {IndexedNodeKind::kElement}, {""})
                   .ok());
  // Root with a parent.
  EXPECT_FALSE(IndexedDocument::FromFlatColumns(
                   labels, {0}, {0}, {IndexedNodeKind::kElement}, {""})
                   .ok());
  // Parent after child (not pre-order).
  EXPECT_FALSE(IndexedDocument::FromFlatColumns(
                   labels, {kInvalidNode, 2, 0}, {0, 0, 0},
                   {IndexedNodeKind::kElement, IndexedNodeKind::kElement,
                    IndexedNodeKind::kElement},
                   {"", "", ""})
                   .ok());
  // Text node with a child.
  EXPECT_FALSE(IndexedDocument::FromFlatColumns(
                   labels, {kInvalidNode, 0, 1},
                   {0, kInvalidLabel, kInvalidLabel},
                   {IndexedNodeKind::kElement, IndexedNodeKind::kText,
                    IndexedNodeKind::kText},
                   {"", "x", "y"})
                   .ok());
  // Label out of range.
  EXPECT_FALSE(IndexedDocument::FromFlatColumns(
                   labels, {kInvalidNode}, {7}, {IndexedNodeKind::kElement},
                   {""})
                   .ok());
  // Empty.
  EXPECT_FALSE(
      IndexedDocument::FromFlatColumns(labels, {}, {}, {}, {}).ok());
}

}  // namespace
}  // namespace extract
