#include "search/result_builder.h"

#include <gtest/gtest.h>

#include "datagen/retailer_dataset.h"
#include "xml/serializer.h"

namespace extract {
namespace {

struct Ctx {
  XmlDatabase db;
  Query query;
  std::vector<QueryResult> results;
};

Ctx RunQuery(std::string xml, const std::string& query_text) {
  auto db = XmlDatabase::Load(std::move(xml));
  EXPECT_TRUE(db.ok()) << db.status();
  Query query = Query::Parse(query_text);
  XSeekEngine engine;
  auto results = engine.Search(*db, query);
  EXPECT_TRUE(results.ok()) << results.status();
  return Ctx{std::move(*db), std::move(query), std::move(*results)};
}

TEST(XSeekResultTest, KeepsMatchPathsAndValues) {
  Ctx ctx = RunQuery(R"(<db>
    <store><name>Levis</name><city>Houston</city>
      <stock><item><kind>jeans</kind><qty>5</qty></item>
             <item><kind>hat</kind><qty>2</qty></item></stock>
    </store>
    <store><name>Zara</name><city>Reno</city>
      <stock><item><kind>coat</kind><qty>1</qty></item></stock>
    </store>
  </db>)",
                     "store houston");
  ASSERT_EQ(ctx.results.size(), 1u);
  auto tree = MaterializeXSeekResult(ctx.db, ctx.results[0]);
  std::string xml = WriteXml(*tree);
  // Match value shown.
  EXPECT_NE(xml.find("<city>Houston</city>"), std::string::npos);
  // Attributes of the kept store entity shown.
  EXPECT_NE(xml.find("<name>Levis</name>"), std::string::npos);
  // Unmatched descendant entities collapse to one placeholder per label.
  EXPECT_NE(xml.find("<item/>"), std::string::npos);
  // Their contents are pruned.
  EXPECT_EQ(xml.find("jeans"), std::string::npos);
  EXPECT_EQ(xml.find("qty"), std::string::npos);
}

TEST(XSeekResultTest, PlaceholdersCollapsePerLabel) {
  Ctx ctx = RunQuery(GenerateRetailerXml(), "texas apparel retailer");
  ASSERT_EQ(ctx.results.size(), 1u);
  auto pruned = MaterializeXSeekResult(ctx.db, ctx.results[0]);
  auto full = MaterializeResult(ctx.db, ctx.results[0]);
  // The pruned result is drastically smaller than the full 1000+-clothes
  // subtree but still rooted at the retailer.
  EXPECT_EQ(pruned->name(), "retailer");
  EXPECT_LT(pruned->CountNodes(), full->CountNodes() / 4);
  EXPECT_GT(full->CountNodes(), 3000u);
}

TEST(XSeekResultTest, PrunedResultIsStillSelfDescribing) {
  Ctx ctx = RunQuery(GenerateRetailerXml(), "texas apparel retailer");
  auto pruned = MaterializeXSeekResult(ctx.db, ctx.results[0]);
  std::string xml = WriteXml(*pruned);
  // Keys/attributes of the return entity survive pruning.
  EXPECT_NE(xml.find("Brook Brothers"), std::string::npos);
  EXPECT_NE(xml.find("apparel"), std::string::npos);
}

TEST(MaterializeSubtreeTest, TextOnlyNode) {
  auto db = XmlDatabase::Load("<a><b>t</b></a>");
  ASSERT_TRUE(db.ok());
  NodeId text = 2;
  ASSERT_TRUE(db->index().is_text(text));
  auto node = MaterializeSubtree(db->index(), text);
  EXPECT_EQ(node->kind(), XmlNodeKind::kText);
  EXPECT_EQ(node->content(), "t");
}

}  // namespace
}  // namespace extract
