#include "common/analyzer.h"

#include <gtest/gtest.h>

#include "search/search_engine.h"
#include "snippet/pipeline.h"

namespace extract {
namespace {

TEST(SStemTest, HarmanRules) {
  // Rule 1: -ies -> -y (unless -eies / -aies).
  EXPECT_EQ(TextAnalyzer::SStem("stories"), "story");
  EXPECT_EQ(TextAnalyzer::SStem("cities"), "city");
  EXPECT_EQ(TextAnalyzer::SStem("ties"), "ty");  // >3 chars rule applies
  // Rule 2: -es -> -e (unless -aes / -ees / -oes).
  EXPECT_EQ(TextAnalyzer::SStem("stores"), "store");
  EXPECT_EQ(TextAnalyzer::SStem("retailers"), "retailer");  // via rule 3
  EXPECT_EQ(TextAnalyzer::SStem("shoes"), "shoes");   // -oes excluded
  EXPECT_EQ(TextAnalyzer::SStem("trees"), "trees");   // -ees excluded
  // Rule 3: -s dropped (unless -us / -ss).
  EXPECT_EQ(TextAnalyzer::SStem("movies"), "movy");   // ies rule first
  EXPECT_EQ(TextAnalyzer::SStem("jeans"), "jean");
  EXPECT_EQ(TextAnalyzer::SStem("bus"), "bus");
  EXPECT_EQ(TextAnalyzer::SStem("class"), "class");
  EXPECT_EQ(TextAnalyzer::SStem("as"), "as");  // too short
  EXPECT_EQ(TextAnalyzer::SStem("store"), "store");  // no suffix
}

TEST(StopwordTest, CommonWords) {
  EXPECT_TRUE(TextAnalyzer::IsStopword("the"));
  EXPECT_TRUE(TextAnalyzer::IsStopword("of"));
  EXPECT_TRUE(TextAnalyzer::IsStopword("and"));
  EXPECT_FALSE(TextAnalyzer::IsStopword("store"));
  EXPECT_FALSE(TextAnalyzer::IsStopword("texas"));
}

TEST(AnalyzerTest, PlainOnlyFoldsCase) {
  TextAnalyzer plain;
  EXPECT_EQ(plain.AnalyzeToken("Stores"), "stores");
  EXPECT_EQ(plain.AnalyzeToken("THE"), "the");  // kept: stopwords off
  EXPECT_TRUE(plain.options().IsPlain());
}

TEST(AnalyzerTest, StemmingAndStopwords) {
  TextAnalysisOptions options;
  options.stem = true;
  options.remove_stopwords = true;
  TextAnalyzer analyzer(options);
  EXPECT_EQ(analyzer.AnalyzeToken("Stores"), "store");
  EXPECT_EQ(analyzer.AnalyzeToken("the"), "");
  // "Texas" -> "texa" is the classic S-stemmer over-stem; it is consistent
  // between index and query sides, which is what matters for matching.
  EXPECT_EQ(analyzer.AnalyzeText("the stores of Texas"),
            (std::vector<std::string>{"store", "texa"}));
}

TEST(AnalyzerTest, ContainsAnalyzedToken) {
  TextAnalysisOptions options;
  options.stem = true;
  TextAnalyzer analyzer(options);
  EXPECT_TRUE(analyzer.ContainsAnalyzedToken("many stores here", "store"));
  EXPECT_TRUE(analyzer.ContainsAnalyzedToken("one store", "store"));
  EXPECT_FALSE(analyzer.ContainsAnalyzedToken("storage", "store"));
  // Plain analyzer: exact folded token match.
  TextAnalyzer plain;
  EXPECT_FALSE(plain.ContainsAnalyzedToken("many stores here", "store"));
}

// ------------------------- engine integration with analysis enabled ------

constexpr std::string_view kXml = R"(<db>
  <store><name>Levis</name><city>Houston</city></store>
  <store><name>Zara</name><city>Dallas</city></store>
</db>)";

TEST(AnalyzerEngineTest, StemmedQueryMatchesSingularForm) {
  LoadOptions options;
  options.analysis.stem = true;
  auto db = XmlDatabase::Load(kXml, options);
  ASSERT_TRUE(db.ok());
  XSeekEngine engine;
  // "stores" stems to "store", which matches the <store> tags.
  auto results = engine.Search(*db, Query::Parse("stores houston"));
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ(db->index().label_name(results->front().root), "store");
}

TEST(AnalyzerEngineTest, WithoutStemmingPluralMisses) {
  auto db = XmlDatabase::Load(kXml);
  ASSERT_TRUE(db.ok());
  XSeekEngine engine;
  auto results = engine.Search(*db, Query::Parse("stores houston"));
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST(AnalyzerEngineTest, StopwordsDroppedFromQuery) {
  LoadOptions options;
  options.analysis.remove_stopwords = true;
  auto db = XmlDatabase::Load(kXml, options);
  ASSERT_TRUE(db.ok());
  XSeekEngine engine;
  // "the" is dropped; the query behaves like "houston".
  auto results = engine.Search(*db, Query::Parse("the houston"));
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  // All-stopword queries return no results (not an error).
  auto empty = engine.Search(*db, Query::Parse("the of and"));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(AnalyzerEngineTest, SnippetKeywordCoverageUnderStemming) {
  LoadOptions options;
  options.analysis.stem = true;
  auto db = XmlDatabase::Load(kXml, options);
  ASSERT_TRUE(db.ok());
  XSeekEngine engine;
  Query query = Query::Parse("stores houston");
  auto results = engine.Search(*db, query);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  SnippetGenerator generator(&*db);
  SnippetOptions snippet_options;
  snippet_options.size_bound = 6;
  auto snippet = generator.Generate(query, results->front(), snippet_options);
  ASSERT_TRUE(snippet.ok());
  // The keyword "stores" is covered via the stem-matching <store> tag.
  ASSERT_GE(snippet->covered.size(), 2u);
  EXPECT_TRUE(snippet->covered[0]) << "stores";
  EXPECT_TRUE(snippet->covered[1]) << "houston";
}

}  // namespace
}  // namespace extract
