#include "common/lru_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace extract {
namespace {

TEST(LruCacheTest, GetMissThenHit) {
  ShardedLruCache<int, std::string> cache(8, 2);
  EXPECT_FALSE(cache.Get(1).has_value());
  cache.Put(1, "one");
  auto hit = cache.Get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "one");

  LruCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(LruCacheTest, PutOverwrites) {
  ShardedLruCache<int, std::string> cache(8);
  cache.Put(1, "one");
  cache.Put(1, "uno");
  EXPECT_EQ(*cache.Get(1), "uno");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedPerShard) {
  // One shard makes the recency order global and the test deterministic.
  ShardedLruCache<int, int> cache(3, 1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  // Touch 1 so 2 becomes the LRU entry.
  EXPECT_TRUE(cache.Get(1).has_value());
  cache.Put(4, 40);
  EXPECT_FALSE(cache.Get(2).has_value()) << "LRU entry must be evicted";
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
  EXPECT_TRUE(cache.Get(4).has_value());
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LruCacheTest, CapacityIsSplitAcrossShardsWithFloorOne) {
  ShardedLruCache<int, int> split(16, 4);
  EXPECT_EQ(split.capacity(), 16u);
  EXPECT_EQ(split.num_shards(), 4u);
  // A budget below the shard count still holds one entry per shard.
  ShardedLruCache<int, int> tiny(1, 4);
  EXPECT_EQ(tiny.capacity(), 4u);
  // Zero shards is clamped to one.
  ShardedLruCache<int, int> one_shard(4, 0);
  EXPECT_EQ(one_shard.num_shards(), 1u);
}

TEST(LruCacheTest, SizeNeverExceedsCapacity) {
  ShardedLruCache<int, int> cache(10, 4);
  for (int i = 0; i < 1000; ++i) cache.Put(i, i);
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GE(cache.Stats().evictions, 1000u - cache.capacity());
}

TEST(LruCacheTest, EraseAndClear) {
  ShardedLruCache<int, int> cache(8);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  EXPECT_FALSE(cache.Get(1).has_value());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(2).has_value());
}

TEST(LruCacheTest, EraseIfRemovesMatchingEntriesAcrossShards) {
  ShardedLruCache<std::string, int> cache(64, 4);
  for (int i = 0; i < 10; ++i) {
    cache.Put("a/" + std::to_string(i), i);
    cache.Put("b/" + std::to_string(i), i);
  }
  size_t erased = cache.EraseIf(
      [](const std::string& key) { return key.rfind("a/", 0) == 0; });
  EXPECT_EQ(erased, 10u);
  EXPECT_EQ(cache.size(), 10u);
  EXPECT_FALSE(cache.Get("a/3").has_value());
  EXPECT_TRUE(cache.Get("b/3").has_value());
}

TEST(LruCacheTest, ConcurrentMixedWorkloadStaysConsistent) {
  ShardedLruCache<int, int> cache(128, 8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<size_t> observed_hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int key = (t * 37 + i) % 200;
        if (i % 3 == 0) {
          cache.Put(key, key * 2);
        } else {
          auto hit = cache.Get(key);
          if (hit.has_value()) {
            EXPECT_EQ(*hit, key * 2) << "value must never tear";
            observed_hits.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (i % 501 == 0) cache.Erase(key);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LruCacheStats stats = cache.Stats();
  const size_t gets = kThreads * (kOpsPerThread - (kOpsPerThread + 2) / 3);
  EXPECT_EQ(stats.hits + stats.misses, gets);
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_LE(stats.entries, cache.capacity());
}

}  // namespace
}  // namespace extract
