#include "xml/dom.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace extract {
namespace {

TEST(DomTest, FactoriesSetKinds) {
  EXPECT_EQ(XmlNode::MakeElement("a")->kind(), XmlNodeKind::kElement);
  EXPECT_EQ(XmlNode::MakeText("t")->kind(), XmlNodeKind::kText);
  EXPECT_EQ(XmlNode::MakeCData("c")->kind(), XmlNodeKind::kCData);
  EXPECT_EQ(XmlNode::MakeComment("c")->kind(), XmlNodeKind::kComment);
  EXPECT_EQ(XmlNode::MakeProcessingInstruction("t", "c")->kind(),
            XmlNodeKind::kProcessingInstruction);
  EXPECT_EQ(XmlNode::MakeDocument()->kind(), XmlNodeKind::kDocument);
}

TEST(DomTest, AppendChildSetsParent) {
  auto root = XmlNode::MakeElement("a");
  XmlNode* child = root->AppendChild(XmlNode::MakeElement("b"));
  EXPECT_EQ(child->parent(), root.get());
  EXPECT_EQ(root->children().size(), 1u);
}

TEST(DomTest, FindChildElement) {
  auto root = XmlNode::MakeElement("a");
  root->AppendChild(XmlNode::MakeText("skip"));
  root->AppendChild(XmlNode::MakeElement("b"));
  root->AppendChild(XmlNode::MakeElement("c"));
  EXPECT_NE(root->FindChildElement("b"), nullptr);
  EXPECT_NE(root->FindChildElement("c"), nullptr);
  EXPECT_EQ(root->FindChildElement("d"), nullptr);
  EXPECT_EQ(root->ChildElements().size(), 2u);
}

TEST(DomTest, InnerTextConcatenatesSubtree) {
  auto doc = ParseXml("<a>x<b>y<c>z</c></b>w</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->root()->InnerText(), "xyzw");
}

TEST(DomTest, CountNodesAndEdges) {
  auto doc = ParseXml("<a><b>t</b><c/></a>");
  ASSERT_TRUE(doc.ok());
  // a, b, text, c
  EXPECT_EQ((*doc)->root()->CountNodes(), 4u);
  EXPECT_EQ((*doc)->root()->CountEdges(), 3u);
}

TEST(DomTest, CloneIsDeepAndDetached) {
  auto doc = ParseXml(R"(<a x="1"><b>t</b></a>)");
  ASSERT_TRUE(doc.ok());
  auto clone = (*doc)->root()->Clone();
  EXPECT_EQ(clone->parent(), nullptr);
  EXPECT_TRUE(clone->StructurallyEquals(*(*doc)->root()));
  // Mutating the clone does not affect the original.
  clone->AppendChild(XmlNode::MakeElement("new"));
  EXPECT_FALSE(clone->StructurallyEquals(*(*doc)->root()));
}

TEST(DomTest, StructuralEqualityDistinguishes) {
  auto a1 = ParseXmlFragment("<a><b>x</b></a>");
  auto a2 = ParseXmlFragment("<a><b>x</b></a>");
  auto b = ParseXmlFragment("<a><b>y</b></a>");
  auto c = ParseXmlFragment("<a><c>x</c></a>");
  ASSERT_TRUE(a1.ok() && a2.ok() && b.ok() && c.ok());
  EXPECT_TRUE((*a1)->StructurallyEquals(**a2));
  EXPECT_FALSE((*a1)->StructurallyEquals(**b));
  EXPECT_FALSE((*a1)->StructurallyEquals(**c));
}

TEST(DomTest, AttributeEqualityMatters) {
  auto a = ParseXmlFragment(R"(<a x="1"/>)");
  auto b = ParseXmlFragment(R"(<a x="2"/>)");
  auto c = ParseXmlFragment(R"(<a/>)");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_FALSE((*a)->StructurallyEquals(**b));
  EXPECT_FALSE((*a)->StructurallyEquals(**c));
}

TEST(DomTest, DocumentRootSkipsNonElements) {
  XmlParseOptions options;
  options.keep_processing_instructions = true;
  auto doc = ParseXml("<?pi data?><a/>", options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->root()->name(), "a");
}

}  // namespace
}  // namespace extract
