#include "search/corpus.h"

#include <gtest/gtest.h>

#include "datagen/movies_dataset.h"
#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"

namespace extract {
namespace {

XmlCorpus MakeDemoCorpus() {
  XmlCorpus corpus;
  EXPECT_TRUE(corpus.AddDocument("retailer", GenerateRetailerXml()).ok());
  EXPECT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
  EXPECT_TRUE(corpus.AddDocument("movies", GenerateMoviesXml()).ok());
  return corpus;
}

TEST(CorpusTest, AddAndFind) {
  XmlCorpus corpus = MakeDemoCorpus();
  EXPECT_EQ(corpus.size(), 3u);
  EXPECT_NE(corpus.Find("stores"), nullptr);
  EXPECT_EQ(corpus.Find("nope"), nullptr);
  EXPECT_EQ(corpus.DocumentNames(),
            (std::vector<std::string>{"movies", "retailer", "stores"}));
}

TEST(CorpusTest, DuplicateNameRejected) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("a", "<x>1</x>").ok());
  EXPECT_EQ(corpus.AddDocument("a", "<y>2</y>").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(corpus.size(), 1u);
}

TEST(CorpusTest, MalformedDocumentRejected) {
  XmlCorpus corpus;
  EXPECT_EQ(corpus.AddDocument("bad", "<x><y></x>").code(),
            StatusCode::kParseError);
  EXPECT_EQ(corpus.size(), 0u);
}

TEST(CorpusTest, SearchAllMergesAcrossDocuments) {
  XmlCorpus corpus = MakeDemoCorpus();
  XSeekEngine engine;
  // "texas" occurs in both the retailer and the stores data sets.
  auto hits = corpus.SearchAll(Query::Parse("texas"), engine);
  ASSERT_TRUE(hits.ok()) << hits.status();
  ASSERT_FALSE(hits->empty());
  bool saw_retailer = false, saw_stores = false, saw_movies = false;
  for (const CorpusResult& hit : *hits) {
    if (hit.document == "retailer") saw_retailer = true;
    if (hit.document == "stores") saw_stores = true;
    if (hit.document == "movies") saw_movies = true;
  }
  EXPECT_TRUE(saw_retailer);
  EXPECT_TRUE(saw_stores);
  EXPECT_FALSE(saw_movies);
  // Scores non-increasing.
  for (size_t i = 1; i < hits->size(); ++i) {
    EXPECT_GE((*hits)[i - 1].score, (*hits)[i].score);
  }
}

TEST(CorpusTest, SearchAllEmptyWhenNoDocumentMatches) {
  XmlCorpus corpus = MakeDemoCorpus();
  XSeekEngine engine;
  auto hits = corpus.SearchAll(Query::Parse("zzzznonexistent"), engine);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST(CorpusTest, SearchAllPropagatesEngineErrors) {
  XmlCorpus corpus = MakeDemoCorpus();
  XSeekEngine engine;
  EXPECT_FALSE(corpus.SearchAll(Query{}, engine).ok());  // empty query
}

TEST(CorpusTest, HitsReferenceTheirOwnDatabase) {
  XmlCorpus corpus = MakeDemoCorpus();
  XSeekEngine engine;
  auto hits = corpus.SearchAll(Query::Parse("texas store"), engine);
  ASSERT_TRUE(hits.ok());
  for (const CorpusResult& hit : *hits) {
    const XmlDatabase* db = corpus.Find(hit.document);
    ASSERT_NE(db, nullptr);
    EXPECT_LT(static_cast<size_t>(hit.result.root), db->index().num_nodes());
  }
}

}  // namespace
}  // namespace extract
