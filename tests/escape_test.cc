#include "xml/escape.h"

#include <gtest/gtest.h>

namespace extract {
namespace {

TEST(EscapeTest, TextEscapesMarkupChars) {
  EXPECT_EQ(EscapeXmlText("a < b & c > d"), "a &lt; b &amp; c &gt; d");
  EXPECT_EQ(EscapeXmlText("plain"), "plain");
  EXPECT_EQ(EscapeXmlText("\"quotes\" 'fine'"), "\"quotes\" 'fine'");
}

TEST(EscapeTest, AttributeAlsoEscapesQuote) {
  EXPECT_EQ(EscapeXmlAttribute("say \"hi\" & <bye>"),
            "say &quot;hi&quot; &amp; &lt;bye&gt;");
}

TEST(UnescapeTest, PredefinedEntities) {
  auto r = UnescapeXml("&amp;&lt;&gt;&apos;&quot;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "&<>'\"");
}

TEST(UnescapeTest, PassThroughPlainText) {
  auto r = UnescapeXml("no entities here");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "no entities here");
}

TEST(UnescapeTest, DecimalCharRef) {
  auto r = UnescapeXml("A&#66;C");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "ABC");
}

TEST(UnescapeTest, HexCharRef) {
  auto r = UnescapeXml("&#x41;&#X42;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "AB");
}

TEST(UnescapeTest, MultiByteUtf8CharRef) {
  // U+00E9 (é) = 0xC3 0xA9; U+4E2D = 0xE4 0xB8 0xAD; U+1F600 = 4 bytes.
  auto r1 = UnescapeXml("&#233;");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, "\xC3\xA9");
  auto r2 = UnescapeXml("&#x4E2D;");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, "\xE4\xB8\xAD");
  auto r3 = UnescapeXml("&#x1F600;");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->size(), 4u);
}

TEST(UnescapeTest, ErrorsOnUnknownEntity) {
  EXPECT_FALSE(UnescapeXml("&nbsp;").ok());
  EXPECT_FALSE(UnescapeXml("&foo;").ok());
}

TEST(UnescapeTest, ErrorsOnUnterminatedReference) {
  EXPECT_FALSE(UnescapeXml("a &amp b").ok());
  EXPECT_FALSE(UnescapeXml("&").ok());
}

TEST(UnescapeTest, ErrorsOnBadNumericRef) {
  EXPECT_FALSE(UnescapeXml("&#;").ok());
  EXPECT_FALSE(UnescapeXml("&#x;").ok());
  EXPECT_FALSE(UnescapeXml("&#12x;").ok());
  EXPECT_FALSE(UnescapeXml("&#xD800;").ok());     // surrogate
  EXPECT_FALSE(UnescapeXml("&#x110000;").ok());   // beyond Unicode
  EXPECT_FALSE(UnescapeXml("&#99999999999;").ok());
}

TEST(RoundTripTest, EscapeThenUnescapeIsIdentity) {
  for (const char* s :
       {"a<b>&c", "\"mixed\" 'quotes'", "", "plain text", "1 < 2 && 3 > 2"}) {
    auto r = UnescapeXml(EscapeXmlAttribute(s));
    ASSERT_TRUE(r.ok()) << s;
    EXPECT_EQ(*r, s);
  }
}

}  // namespace
}  // namespace extract
