// FaultInjector unit tests plus per-point propagation: each instrumented
// point, when armed, must surface its injected Status through the public
// API it guards — precisely (code and message preserved, " [fault:<point>]"
// tag attached), with every invariant of the layer intact (nothing
// half-published, streams still drain, counters still quiesce).
//
// The chaos suite (chaos_serving_test.cc) layers seeded schedules over a
// live HTTP server; this file pins down the deterministic per-point
// contracts those episodes rely on.

#include "common/fault.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "http/admission.h"
#include "snippet/snippet_context.h"
#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"
#include "search/corpus.h"
#include "search/corpus_snapshot.h"
#include "snippet/snippet_service.h"
#include "snippet/snippet_tree.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace extract {
namespace {

FaultRule OnNthHit(std::string point, uint64_t nth,
                   StatusCode code = StatusCode::kUnavailable) {
  FaultRule rule;
  rule.point = std::move(point);
  rule.nth_hit = nth;
  rule.code = code;
  return rule;
}

FaultRule WithProbability(std::string point, double p, uint64_t seed) {
  FaultRule rule;
  rule.point = std::move(point);
  rule.nth_hit = 0;
  rule.probability = p;
  rule.seed = seed;
  rule.max_fires = 0;  // unlimited
  return rule;
}

// ------------------------------------------------------------- framework

TEST(FaultInjectorTest, DisarmedByDefault) {
  EXPECT_FALSE(FaultInjector::Instance().armed());
  EXPECT_TRUE(FaultInjector::Instance().Check("any.point").ok());
  EXPECT_FALSE(FaultInjector::Instance().CheckFired("any.point"));
}

TEST(FaultInjectorTest, NthHitFiresExactlyOnce) {
  ScopedFaultInjection arm({OnNthHit("unit.point", 3)});
  FaultInjector& injector = FaultInjector::Instance();
  for (int hit = 1; hit <= 10; ++hit) {
    Status status = injector.Check("unit.point");
    if (hit == 3) {
      EXPECT_EQ(status.code(), StatusCode::kUnavailable) << "hit " << hit;
    } else {
      EXPECT_TRUE(status.ok()) << "hit " << hit;
    }
  }
  EXPECT_EQ(injector.Hits("unit.point"), 10u);
  EXPECT_EQ(injector.TotalFires(), 1u);
}

TEST(FaultInjectorTest, InjectedMessageNamesThePoint) {
  ScopedFaultInjection arm({OnNthHit("tagged.point", 1)});
  Status status = FaultInjector::Instance().Check("tagged.point");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("[fault:tagged.point]"), std::string::npos)
      << status;
}

TEST(FaultInjectorTest, RulesOnlyMatchTheirPoint) {
  ScopedFaultInjection arm({OnNthHit("this.point", 1)});
  EXPECT_TRUE(FaultInjector::Instance().Check("other.point").ok());
  EXPECT_FALSE(FaultInjector::Instance().Check("this.point").ok());
}

TEST(FaultInjectorTest, SeededProbabilityReplaysExactly) {
  const auto pattern = [](uint64_t seed) {
    ScopedFaultInjection arm({WithProbability("prob.point", 0.3, seed)});
    std::vector<bool> fired;
    fired.reserve(200);
    for (int i = 0; i < 200; ++i) {
      fired.push_back(FaultInjector::Instance().CheckFired("prob.point"));
    }
    return fired;
  };
  std::vector<bool> first = pattern(42);
  // A 0.3 rule over 200 draws fires somewhere — and not everywhere.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 200);
  EXPECT_EQ(first, pattern(42));    // same seed, same pattern
  EXPECT_NE(first, pattern(1234));  // different seed, different pattern
}

TEST(FaultInjectorTest, MaxFiresCapsProbabilisticRules) {
  FaultRule rule = WithProbability("capped.point", 1.0, 7);
  rule.max_fires = 2;
  ScopedFaultInjection arm({rule});
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (FaultInjector::Instance().CheckFired("capped.point")) ++fired;
  }
  EXPECT_EQ(fired, 2);
}

TEST(FaultInjectorTest, ScopedInjectionDisarmsOnExit) {
  {
    ScopedFaultInjection arm({OnNthHit("scoped.point", 1)});
    EXPECT_TRUE(FaultInjector::Instance().armed());
  }
  EXPECT_FALSE(FaultInjector::Instance().armed());
  EXPECT_TRUE(FaultInjector::Instance().Check("scoped.point").ok());
}

// ------------------------------------------------- per-point propagation

TEST(FaultPointTest, DbLoadSurfacesThroughLoad) {
  ScopedFaultInjection arm({OnNthHit("db.load", 1, StatusCode::kUnavailable)});
  auto db = XmlDatabase::Load("<a>x</a>");
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(db.status().message().find("[fault:db.load]"), std::string::npos);
}

TEST(FaultPointTest, TokenizerAndParserPointsSurfaceThroughParse) {
  {
    ScopedFaultInjection arm(
        {OnNthHit("xml.tokenizer.next", 2, StatusCode::kCancelled)});
    auto doc = ParseXml("<a><b>x</b></a>");
    ASSERT_FALSE(doc.ok());
    EXPECT_EQ(doc.status().code(), StatusCode::kCancelled);
  }
  {
    ScopedFaultInjection arm(
        {OnNthHit("xml.parser.build", 1, StatusCode::kDeadlineExceeded)});
    auto doc = ParseXml("<a/>");
    ASSERT_FALSE(doc.ok());
    EXPECT_EQ(doc.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(FaultPointTest, IndexBuildPointsSurfaceThroughLoad) {
  {
    ScopedFaultInjection arm({OnNthHit("index.document.build", 1)});
    EXPECT_EQ(XmlDatabase::Load("<a>x</a>").status().code(),
              StatusCode::kUnavailable);
  }
  {
    ScopedFaultInjection arm({OnNthHit("index.partitions.build", 1)});
    EXPECT_EQ(XmlDatabase::Load("<a>x</a>").status().code(),
              StatusCode::kUnavailable);
  }
}

TEST(FaultPointTest, SearchExecuteSurfacesThroughEngine) {
  auto db = XmlDatabase::Load(GenerateStoresXml());
  ASSERT_TRUE(db.ok()) << db.status();
  XSeekEngine engine;
  ScopedFaultInjection arm(
      {OnNthHit("search.execute", 1, StatusCode::kDeadlineExceeded)});
  auto hits = engine.Search(*db, Query::Parse("texas"));
  ASSERT_FALSE(hits.ok());
  EXPECT_EQ(hits.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(FaultPointTest, EpochPublishFailureLeavesNothingPublished) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
  const EpochStats before = corpus.EpochStatsSnapshot();
  {
    ScopedFaultInjection arm({OnNthHit("epoch.publish", 1)});
    Status add = corpus.AddDocument("retailer", GenerateRetailerXml());
    ASSERT_FALSE(add.ok());
    EXPECT_EQ(add.code(), StatusCode::kUnavailable);
  }
  // The failed mutation must be invisible: same size, same epoch, and the
  // name is free for a clean retry.
  EXPECT_EQ(corpus.size(), 1u);
  EXPECT_EQ(corpus.EpochStatsSnapshot().epoch, before.epoch);
  EXPECT_TRUE(corpus.AddDocument("retailer", GenerateRetailerXml()).ok());
  EXPECT_EQ(corpus.size(), 2u);

  {
    ScopedFaultInjection arm({OnNthHit("epoch.publish", 1)});
    Status remove = corpus.RemoveDocument("retailer");
    ASSERT_FALSE(remove.ok());
  }
  EXPECT_EQ(corpus.size(), 2u);
  EXPECT_NE(corpus.Find("retailer"), nullptr);
}

TEST(FaultPointTest, SnippetStageFailureKeepsStageDecoration) {
  auto db = XmlDatabase::Load(GenerateStoresXml());
  ASSERT_TRUE(db.ok()) << db.status();
  XSeekEngine engine;
  auto hits = engine.Search(*db, Query::Parse("texas"));
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());

  SnippetService service(&*db);
  SnippetContext ctx(&*db, Query::Parse("texas"));
  ScopedFaultInjection arm(
      {OnNthHit("snippet.stage", 2, StatusCode::kCancelled)});
  auto snippet = service.Generate(ctx, (*hits)[0], SnippetOptions{});
  ASSERT_FALSE(snippet.ok());
  EXPECT_EQ(snippet.status().code(), StatusCode::kCancelled);
  // The failure is attributed to the stage it interrupted, exactly like a
  // genuine stage error.
  EXPECT_NE(snippet.status().message().find(" stage: "), std::string::npos)
      << snippet.status();
}

TEST(FaultPointTest, AdmissionAcquireShedsWithoutConsumingSlot) {
  AdmissionController admission{AdmissionOptions{}};
  ScopedFaultInjection arm(
      {OnNthHit("admission.acquire", 1, StatusCode::kUnavailable)});
  auto ticket =
      admission.Acquire(std::chrono::steady_clock::time_point::max());
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.status().code(), StatusCode::kUnavailable);
  const AdmissionStats stats = admission.Stats();
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.admitted, 0u);
}

// A dropped TaskGroup submission must not wedge Wait(): the group's
// outstanding count is only bumped for tasks that were actually queued.
TEST(FaultPointTest, DroppedPoolSubmitStillQuiesces) {
  std::atomic<int> ran{0};
  {
    TaskGroup group(&SharedThreadPool());
    ScopedFaultInjection arm({OnNthHit("pool.submit", 2)});
    for (int i = 0; i < 4; ++i) {
      group.Submit([&ran] { ran.fetch_add(1); });
    }
    group.Wait();  // must return despite the dropped task
  }
  EXPECT_EQ(ran.load(), 3);
}

std::string Fingerprint(const Snippet& snippet) {
  std::string out = RenderSnippet(snippet);
  if (snippet.tree != nullptr) out += WriteXml(*snippet.tree);
  return out;
}

// cache.get is a forced miss: serving regenerates, and regeneration is
// byte-identical to the cached copy (the cache is pure memoization).
TEST(FaultPointTest, CacheGetMissRegeneratesIdentically) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
  corpus.EnableSnippetCache();
  XSeekEngine engine;
  const Query query = Query::Parse("texas");
  auto hits = corpus.SearchAll(query, engine);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());

  SnippetOptions options;
  auto reference = corpus.GenerateSnippets(query, *hits, options);
  ASSERT_TRUE(reference.ok()) << reference.status();

  ScopedFaultInjection arm({WithProbability("cache.get", 1.0, 9)});
  auto regenerated = corpus.GenerateSnippets(query, *hits, options);
  ASSERT_TRUE(regenerated.ok()) << regenerated.status();
  ASSERT_EQ(regenerated->size(), reference->size());
  for (size_t i = 0; i < reference->size(); ++i) {
    EXPECT_EQ(Fingerprint((*regenerated)[i]), Fingerprint((*reference)[i]))
        << "slot " << i;
  }
}

// cache.put drops the insert: the cache simply never warms, results are
// untouched.
TEST(FaultPointTest, CachePutDropKeepsServingCorrect) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
  corpus.EnableSnippetCache();
  XSeekEngine engine;
  const Query query = Query::Parse("texas");
  auto hits = corpus.SearchAll(query, engine);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());

  std::string reference;
  {
    ScopedFaultInjection arm({WithProbability("cache.put", 1.0, 3)});
    auto first = corpus.GenerateSnippets(query, *hits, SnippetOptions{});
    ASSERT_TRUE(first.ok()) << first.status();
    reference = Fingerprint((*first)[0]);
    EXPECT_EQ(corpus.snippet_cache()->Stats().entries, 0u);  // never stored
  }
  auto second = corpus.GenerateSnippets(query, *hits, SnippetOptions{});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Fingerprint((*second)[0]), reference);
}

// ---------------------------------------------------- snapshot domain

std::string WriteSnapshotFixture(const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  auto writer = CorpusSnapshotWriter::Create(path);
  EXPECT_TRUE(writer.ok()) << writer.status();
  EXPECT_TRUE(writer->Add("stores", *XmlDatabase::Load(GenerateStoresXml()))
                  .ok());
  EXPECT_TRUE(writer->Finish().ok());
  return path;
}

TEST(FaultPointTest, SnapshotOpenFailureIsCleanAndRetryable) {
  const std::string path = WriteSnapshotFixture("fault_open.xcsn");
  {
    ScopedFaultInjection arm(
        {OnNthHit("snapshot.open", 1, StatusCode::kUnavailable)});
    auto snapshot = CorpusSnapshot::Open(path);
    ASSERT_FALSE(snapshot.ok());
    EXPECT_EQ(snapshot.status().code(), StatusCode::kUnavailable);
    EXPECT_NE(snapshot.status().message().find("[fault:snapshot.open]"),
              std::string::npos)
        << snapshot.status();
  }
  EXPECT_TRUE(CorpusSnapshot::Open(path).ok());  // disarmed retry succeeds
  std::remove(path.c_str());
}

TEST(FaultPointTest, SnapshotChecksumFaultSurfacesAtOpen) {
  const std::string path = WriteSnapshotFixture("fault_checksum.xcsn");
  // The first snapshot.checksum hit guards the header verification.
  ScopedFaultInjection arm(
      {OnNthHit("snapshot.checksum", 1, StatusCode::kParseError)});
  auto snapshot = CorpusSnapshot::Open(path);
  ASSERT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(FaultPointTest, SnapshotTruncationFaultSurfacesAtOpen) {
  const std::string path = WriteSnapshotFixture("fault_truncated.xcsn");
  ScopedFaultInjection arm(
      {OnNthHit("snapshot.truncated", 1, StatusCode::kParseError)});
  EXPECT_EQ(CorpusSnapshot::Open(path).status().code(),
            StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(FaultPointTest, SnapshotFaultInFailureRetainsNothingAndRetries) {
  const std::string path = WriteSnapshotFixture("fault_faultin.xcsn");
  auto snapshot = CorpusSnapshot::Open(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  CorpusSnapshot& snap = **snapshot;
  {
    ScopedFaultInjection arm(
        {OnNthHit("snapshot.fault", 1, StatusCode::kUnavailable)});
    auto doc = snap.Fault(0);
    ASSERT_FALSE(doc.ok());
    EXPECT_EQ(doc.status().code(), StatusCode::kUnavailable);
  }
  // Failure counted, nothing resident, the disarmed retry decodes cleanly.
  EXPECT_EQ(snap.Stats().fault_failures, 1u);
  EXPECT_EQ(snap.Stats().resident, 0u);
  EXPECT_EQ(snap.ResidentOrNull(0), nullptr);
  auto doc = snap.Fault(0);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->name, "stores");
  EXPECT_EQ(snap.Stats().resident, 1u);
  std::remove(path.c_str());
}

// The checksum point also guards every per-document fault-in: a search
// over a snapshot-backed corpus surfaces the injected Status as that
// document's search error, and serving recovers once disarmed.
TEST(FaultPointTest, SnapshotFaultInFailureSurfacesThroughSearch) {
  const std::string path = WriteSnapshotFixture("fault_search.xcsn");
  auto snapshot = CorpusSnapshot::Open(path);
  ASSERT_TRUE(snapshot.ok());
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AttachSnapshot(*snapshot).ok());
  XSeekEngine engine;
  {
    ScopedFaultInjection arm(
        {OnNthHit("snapshot.fault", 1, StatusCode::kUnavailable)});
    auto hits = corpus.SearchAll(Query::Parse("texas"), engine);
    ASSERT_FALSE(hits.ok());
    EXPECT_EQ(hits.status().code(), StatusCode::kUnavailable);
  }
  auto hits = corpus.SearchAll(Query::Parse("texas"), engine);
  ASSERT_TRUE(hits.ok()) << hits.status();
  EXPECT_FALSE(hits->empty());
  std::remove(path.c_str());
}

// ------------------------------------------------------- budget domain

TEST(QueryBudgetTest, NodeBudgetDegradesStreamWithoutKillingIt) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
  XSeekEngine engine;
  const Query query = Query::Parse("texas");

  CorpusServingOptions serving;
  serving.budget.max_node_visits = 1;  // trips on the first generation
  StreamOptions lazy;
  lazy.num_threads = 1;
  auto served = corpus.ServeQuery(query, engine, RankingOptions{}, serving,
                                  SnippetOptions{}, lazy);
  ASSERT_TRUE(served.ok()) << served.status();
  ASSERT_FALSE(served->page().empty());

  size_t events = 0, exhausted = 0;
  while (auto event = served->stream().Next()) {
    ++events;
    if (!event->snippet.ok()) {
      EXPECT_EQ(event->snippet.status().code(),
                StatusCode::kResourceExhausted)
          << event->snippet.status();
      ++exhausted;
    }
  }
  EXPECT_EQ(events, served->page().size());  // drained, not killed
  EXPECT_GT(exhausted, 0u);
  EXPECT_TRUE(served->degraded());
  EXPECT_GT(served->nodes_visited(), 0u);
}

TEST(QueryBudgetTest, GenerousBudgetDoesNotDegrade) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
  XSeekEngine engine;
  CorpusServingOptions serving;
  serving.budget.max_node_visits = 100000000;
  StreamOptions lazy;
  lazy.num_threads = 1;
  auto served = corpus.ServeQuery(Query::Parse("texas"), engine,
                                  RankingOptions{}, serving, SnippetOptions{},
                                  lazy);
  ASSERT_TRUE(served.ok()) << served.status();
  while (auto event = served->stream().Next()) {
    EXPECT_TRUE(event->snippet.ok()) << event->snippet.status();
  }
  EXPECT_FALSE(served->degraded());
  EXPECT_GT(served->nodes_visited(), 0u);  // charged, under cap
}

}  // namespace
}  // namespace extract
