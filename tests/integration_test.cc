// End-to-end properties of the whole pipeline (load -> search -> snippets)
// across datasets and random databases.

#include <gtest/gtest.h>

#include <set>

#include "datagen/movies_dataset.h"
#include "datagen/random_xml.h"
#include "datagen/retailer_dataset.h"
#include "datagen/workload.h"
#include "search/result_builder.h"
#include "snippet/pipeline.h"
#include "xml/serializer.h"

namespace extract {
namespace {

TEST(IntegrationTest, RetailerEndToEndGolden) {
  auto db = XmlDatabase::Load(GenerateRetailerXml());
  ASSERT_TRUE(db.ok());
  Query query = Query::Parse("Texas, apparel, retailer");
  XSeekEngine engine;
  auto results = engine.Search(*db, query);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);

  SnippetGenerator generator(&*db);
  SnippetOptions options;
  options.size_bound = 21;
  auto snippet = generator.Generate(query, results->front(), options);
  ASSERT_TRUE(snippet.ok());

  // Figure 3 golden IList through the full pipeline.
  EXPECT_EQ(snippet->ilist.ToString(),
            "Texas, apparel, retailer, clothes, store, Brook Brothers, "
            "Houston, outwear, man, casual, suit, woman");
  // The snippet's return entity and key match §2.2.
  EXPECT_EQ(db->index().labels().Name(snippet->return_entity.label),
            "retailer");
  EXPECT_EQ(snippet->key.value, "Brook Brothers");
  // The tree is rooted at the retailer and within budget.
  EXPECT_EQ(snippet->tree->name(), "retailer");
  EXPECT_LE(snippet->edges(), 21u);
}

TEST(IntegrationTest, MoviesWorkloadEndToEnd) {
  MoviesDatasetOptions dataset;
  dataset.num_movies = 40;
  auto db = XmlDatabase::Load(GenerateMoviesXml(dataset));
  ASSERT_TRUE(db.ok());
  WorkloadOptions workload_options;
  workload_options.num_queries = 15;
  workload_options.keywords_per_query = 2;
  auto workload = GenerateWorkload(*db, workload_options);

  XSeekEngine engine;
  SnippetGenerator generator(&*db);
  SnippetOptions options;
  options.size_bound = 12;
  size_t total_results = 0;
  for (const Query& query : workload) {
    auto results = engine.Search(*db, query);
    ASSERT_TRUE(results.ok());
    total_results += results->size();
    auto snippets = generator.GenerateAll(query, *results, options);
    ASSERT_TRUE(snippets.ok());
    for (const Snippet& snippet : *snippets) {
      EXPECT_LE(snippet.edges(), options.size_bound);
      EXPECT_EQ(snippet.tree->CountEdges(), snippet.edges());
      // Every query keyword that has an instance in the result should be
      // covered: keywords rank first and the root is free for tag matches.
      for (size_t k = 0; k < query.keywords.size() && k < snippet.covered.size();
           ++k) {
        // (Coverage may legitimately fail for keywords costlier than the
        // whole budget; with bound 12 on this dataset that cannot happen —
        // max depth is 4.)
        EXPECT_TRUE(snippet.covered[k])
            << "keyword " << query.keywords[k] << " uncovered";
      }
    }
  }
  EXPECT_GT(total_results, 0u);
}

// Cross-dataset pipeline invariants on random databases.
class RandomPipelineProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPipelineProperty, SnippetInvariantsHold) {
  RandomXmlOptions options;
  options.seed = GetParam();
  options.levels = 2 + GetParam() % 2;
  options.entities_per_parent = 4 + GetParam() % 3;
  options.attributes_per_entity = 2;
  options.domain_size = 6;
  options.zipf_skew = 1.0;
  RandomXmlData data = GenerateRandomXml(options);
  auto db = XmlDatabase::Load(data.xml);
  ASSERT_TRUE(db.ok());

  WorkloadOptions workload_options;
  workload_options.num_queries = 5;
  workload_options.keywords_per_query = 2;
  workload_options.seed = GetParam() * 31 + 7;
  auto workload = GenerateWorkload(*db, workload_options);

  XSeekEngine engine;
  SnippetGenerator generator(&*db);
  for (const Query& query : workload) {
    auto results = engine.Search(*db, query);
    ASSERT_TRUE(results.ok());
    for (size_t bound : {0u, 3u, 7u, 15u}) {
      SnippetOptions snippet_options;
      snippet_options.size_bound = bound;
      for (const QueryResult& result : *results) {
        auto snippet = generator.Generate(query, result, snippet_options);
        ASSERT_TRUE(snippet.ok()) << snippet.status();
        // Size bound respected, tree consistent with the node set.
        EXPECT_LE(snippet->edges(), bound);
        EXPECT_EQ(snippet->tree->CountEdges(), snippet->edges());
        // Node set closed under parents within the result subtree.
        std::set<NodeId> set(snippet->nodes.begin(), snippet->nodes.end());
        for (NodeId n : snippet->nodes) {
          EXPECT_TRUE(db->index().IsAncestorOrSelf(result.root, n));
          if (n != result.root) {
            EXPECT_TRUE(set.count(db->index().parent(n)) > 0);
          }
        }
        // Covered flags consistent: covered items have an instance in the
        // selected set.
        std::vector<ItemInstances> instances =
            FindItemInstances(db->index(), db->classification(), result.root,
                              snippet->ilist);
        for (size_t i = 0; i < instances.size(); ++i) {
          bool any = false;
          for (NodeId inst : instances[i].nodes) {
            if (set.count(inst) > 0) any = true;
          }
          EXPECT_EQ(snippet->covered[i], any) << "item " << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDbs, RandomPipelineProperty,
                         ::testing::Range<uint64_t>(1, 11));

TEST(IntegrationTest, MaterializedResultPreservesDominantFeatureRanking) {
  // Serializing a result and re-loading it as its own document preserves
  // the dominant-feature ranking: feature statistics are per-result, so
  // they agree whether the result lives inside the database or stands
  // alone. (Key/return-entity inference can legitimately differ — the
  // standalone document lacks the DTD and the surrounding instances.)
  auto db = XmlDatabase::Load(GenerateRetailerXml());
  ASSERT_TRUE(db.ok());
  Query query = Query::Parse("Texas apparel retailer");
  XSeekEngine engine;
  auto results = engine.Search(*db, query);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());

  SnippetGenerator generator(&*db);
  SnippetOptions options;
  options.size_bound = 12;
  auto in_place = generator.Generate(query, results->front(), options);
  ASSERT_TRUE(in_place.ok());

  auto tree = MaterializeSubtree(db->index(), results->front().root);
  auto db2 = XmlDatabase::Load(WriteXml(*tree));
  ASSERT_TRUE(db2.ok());
  auto results2 = XSeekEngine().Search(*db2, query);
  ASSERT_TRUE(results2.ok());
  ASSERT_EQ(results2->size(), 1u);
  SnippetGenerator generator2(&*db2);
  auto standalone = generator2.Generate(query, results2->front(), options);
  ASSERT_TRUE(standalone.ok());

  auto features = [](const Snippet& s) {
    std::vector<std::string> out;
    for (const auto& item : s.ilist.items()) {
      if (item.kind == IListItemKind::kDominantFeature) {
        out.push_back(item.display);
      }
    }
    return out;
  };
  std::vector<std::string> a = features(*in_place);
  std::vector<std::string> b = features(*standalone);
  ASSERT_GE(b.size(), a.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
}

}  // namespace
}  // namespace extract
