// Write-path hardening of ResponseWriter (ISSUE satellite: audit every
// write path for partial-write and error handling). The regression seam is
// ResponseWriter::ForSocket over a socketpair, which lets the tests create
// exactly the conditions a slow, hostile or vanished client produces:
//
//   * a reader draining ONE byte at a time (every send() is partial);
//   * a peer that closed mid-response (EPIPE — must flip the sticky
//     disconnected flag, not crash, not signal);
//   * a reader that stops draining entirely (SO_SNDTIMEO expiry — the
//     stalled-SSE-client case).

#include "http/http_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "http_test_util.h"

namespace extract {
namespace {

struct SocketPair {
  int writer = -1;
  int reader = -1;
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    writer = fds[0];
    reader = fds[1];
  }
  ~SocketPair() {
    if (writer >= 0) ::close(writer);
    if (reader >= 0) ::close(reader);
  }
};

/// Drains `fd` one byte at a time until EOF — the pathological client that
/// turns every large send() into a short write.
std::string DribbleToEof(int fd) {
  std::string out;
  char c;
  for (;;) {
    ssize_t n = ::recv(fd, &c, 1, 0);
    if (n == 1) {
      out.push_back(c);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  return out;
}

TEST(ResponseWriterTest, LargeBodySurvivesOneByteDribbleReader) {
  SocketPair pair;
  // Shrink the send buffer so the megabyte body cannot fit: SendAll's
  // short-write loop must carry the remainder forward.
  const int sndbuf = 4096;
  ::setsockopt(pair.writer, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));

  std::string body(1 << 20, 'x');
  std::string received;
  std::thread reader([&] { received = DribbleToEof(pair.reader); });

  ResponseWriter writer = ResponseWriter::ForSocket(pair.writer);
  writer.SendResponse(200, "text/plain", body);
  EXPECT_FALSE(writer.client_disconnected());
  ::shutdown(pair.writer, SHUT_WR);
  reader.join();

  testing::HttpResponse parsed = testing::ParseResponse(received);
  ASSERT_TRUE(parsed.valid);
  EXPECT_EQ(parsed.status, 200);
  EXPECT_EQ(parsed.body, body);  // byte-exact despite ~1M partial writes
}

TEST(ResponseWriterTest, ChunkedStreamSurvivesDribbleReader) {
  SocketPair pair;
  const int sndbuf = 4096;
  ::setsockopt(pair.writer, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));

  std::string received;
  std::thread reader([&] { received = DribbleToEof(pair.reader); });

  ResponseWriter writer = ResponseWriter::ForSocket(pair.writer);
  ASSERT_TRUE(writer.BeginChunked(200, "text/event-stream"));
  std::string expected;
  for (int i = 0; i < 64; ++i) {
    std::string chunk = "event " + std::to_string(i) + ": " +
                        std::string(1024, static_cast<char>('a' + i % 26)) +
                        "\n";
    expected += chunk;
    ASSERT_TRUE(writer.WriteChunk(chunk)) << "chunk " << i;
  }
  ASSERT_TRUE(writer.EndChunked());
  EXPECT_FALSE(writer.client_disconnected());
  ::shutdown(pair.writer, SHUT_WR);
  reader.join();

  testing::HttpResponse parsed = testing::ParseResponse(received);
  ASSERT_TRUE(parsed.valid);
  EXPECT_EQ(parsed.headers["transfer-encoding"], "chunked");
  EXPECT_EQ(parsed.body, expected);
}

TEST(ResponseWriterTest, PeerCloseMakesDisconnectSticky) {
  SocketPair pair;
  ::close(pair.reader);
  pair.reader = -1;

  ResponseWriter writer = ResponseWriter::ForSocket(pair.writer);
  // Large enough to defeat the kernel's willingness to buffer into a dead
  // socket; MSG_NOSIGNAL turns the SIGPIPE into EPIPE.
  writer.SendResponse(200, "text/plain", std::string(1 << 20, 'x'));
  EXPECT_TRUE(writer.client_disconnected());

  // Sticky: every later write is a no-op returning failure, never a crash.
  EXPECT_FALSE(writer.BeginChunked(200, "text/plain"));
  EXPECT_FALSE(writer.WriteChunk("more"));
  EXPECT_FALSE(writer.EndChunked());
  EXPECT_TRUE(writer.client_disconnected());
}

TEST(ResponseWriterTest, PeerCloseMidChunkedStreamIsDetected) {
  SocketPair pair;
  ResponseWriter writer = ResponseWriter::ForSocket(pair.writer);
  ASSERT_TRUE(writer.BeginChunked(200, "text/event-stream"));
  ASSERT_TRUE(writer.WriteChunk("first\n"));

  ::close(pair.reader);
  pair.reader = -1;
  // The close may take one or two writes to surface (the first can land in
  // the kernel buffer); it must surface as the sticky flag, not a signal.
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !writer.WriteChunk(std::string(64 * 1024, 'y'));
  }
  EXPECT_TRUE(failed);
  EXPECT_TRUE(writer.client_disconnected());
}

TEST(ResponseWriterTest, StalledReaderTripsSendTimeout) {
  SocketPair pair;
  const int sndbuf = 4096;
  ::setsockopt(pair.writer, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  // The production AcceptLoop arms SO_SNDTIMEO from options.write_timeout;
  // mirror it here with a short budget. The reader never drains, so the
  // buffers fill and send() must give up instead of parking forever.
  timeval tv{};
  tv.tv_usec = 200 * 1000;
  ::setsockopt(pair.writer, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  ResponseWriter writer = ResponseWriter::ForSocket(pair.writer);
  writer.SendResponse(200, "text/plain", std::string(4 << 20, 'z'));
  EXPECT_TRUE(writer.client_disconnected());
}

TEST(ResponseWriterTest, CheckClientAliveSeesPeerReset) {
  SocketPair pair;
  ResponseWriter writer = ResponseWriter::ForSocket(pair.writer);
  EXPECT_TRUE(writer.CheckClientAlive());
  ::close(pair.reader);
  pair.reader = -1;
  EXPECT_FALSE(writer.CheckClientAlive());
  EXPECT_TRUE(writer.client_disconnected());
}

}  // namespace
}  // namespace extract
