#include "snippet/snippet_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "datagen/stores_dataset.h"
#include "xml/serializer.h"

namespace extract {
namespace {

struct Ctx {
  XmlDatabase db;
  Query query;
  std::vector<QueryResult> results;
};

Ctx RunQuery(std::string xml, const std::string& query_text) {
  auto db = XmlDatabase::Load(std::move(xml));
  EXPECT_TRUE(db.ok()) << db.status();
  Query query = Query::Parse(query_text);
  XSeekEngine engine;
  auto results = engine.Search(*db, query);
  EXPECT_TRUE(results.ok()) << results.status();
  return Ctx{std::move(*db), std::move(query), std::move(*results)};
}

void ExpectSnippetsIdentical(const Snippet& a, const Snippet& b) {
  EXPECT_EQ(a.result_root, b.result_root);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.covered, b.covered);
  EXPECT_EQ(a.key.value, b.key.value);
  EXPECT_EQ(a.return_entity.label, b.return_entity.label);
  EXPECT_EQ(a.return_entity.evidence, b.return_entity.evidence);
  EXPECT_EQ(a.return_entity.instances, b.return_entity.instances);
  EXPECT_EQ(a.ilist.ToString(), b.ilist.ToString());
  ASSERT_NE(a.tree, nullptr);
  ASSERT_NE(b.tree, nullptr);
  EXPECT_EQ(WriteXml(*a.tree), WriteXml(*b.tree));
}

TEST(SnippetCacheKeyTest, IdenticalRequestsShareOneKey) {
  Query q = Query::Parse("store texas");
  SnippetOptions options;
  EXPECT_EQ(MakeSnippetCacheKey("doc", q, 5, options),
            MakeSnippetCacheKey("doc", q, 5, options));
}

TEST(SnippetCacheKeyTest, EveryKeyedFieldChangesTheSignature) {
  Query q = Query::Parse("store texas");
  SnippetOptions options;
  const SnippetCacheKey base = MakeSnippetCacheKey("doc", q, 5, options);

  EXPECT_FALSE(MakeSnippetCacheKey("doc2", q, 5, options) == base);
  EXPECT_FALSE(MakeSnippetCacheKey("doc", q, 6, options) == base);
  EXPECT_FALSE(MakeSnippetCacheKey("doc", Query::Parse("store dallas"), 5,
                                   options) == base);

  // Same normalized keywords, different raw spelling: the IList displays
  // raw keywords, so the signatures must differ.
  Query shouty = Query::Parse("STORE TEXAS");
  ASSERT_EQ(shouty.keywords, q.keywords);
  EXPECT_FALSE(MakeSnippetCacheKey("doc", shouty, 5, options) == base);

  SnippetOptions other = options;
  other.size_bound += 1;
  EXPECT_FALSE(MakeSnippetCacheKey("doc", q, 5, other) == base);
  other = options;
  other.features.normalize = !other.features.normalize;
  EXPECT_FALSE(MakeSnippetCacheKey("doc", q, 5, other) == base);
  other = options;
  other.features.max_features = 3;
  EXPECT_FALSE(MakeSnippetCacheKey("doc", q, 5, other) == base);
  other = options;
  other.stop_on_first_overflow = !other.stop_on_first_overflow;
  EXPECT_FALSE(MakeSnippetCacheKey("doc", q, 5, other) == base);
  other = options;
  other.use_exact_selector = !other.use_exact_selector;
  EXPECT_FALSE(MakeSnippetCacheKey("doc", q, 5, other) == base);
}

TEST(SnippetCacheKeyTest, StageSequenceChangesTheSignature) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  Query q = Query::Parse("store texas");
  SnippetOptions options;

  // The tag-less overload means "default Figure 4 stages": identical to a
  // default-constructed service's tag.
  SnippetService default_service(&ctx.db);
  EXPECT_EQ(MakeSnippetCacheKey("doc", q, 5, options),
            MakeSnippetCacheKey("doc", q, 5, options,
                                SnippetStageTag(default_service)));

  // A custom sequence signs differently.
  std::vector<std::unique_ptr<SnippetStage>> truncated = BuildDefaultStages();
  truncated.pop_back();  // drop materialize
  SnippetService custom_service(&ctx.db, std::move(truncated));
  EXPECT_FALSE(MakeSnippetCacheKey("doc", q, 5, options,
                                   SnippetStageTag(custom_service)) ==
               MakeSnippetCacheKey("doc", q, 5, options));
}

TEST(SnippetCacheKeyTest, ServicesWithDifferentStagesCanShareACache) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_FALSE(ctx.results.empty());
  SnippetCache cache;  // shared
  SnippetOptions options;
  options.size_bound = 10;

  SnippetService full(&ctx.db);
  CachingSnippetService full_caching(&full, &cache, "stores");
  auto with_tree = full_caching.Generate(ctx.query, ctx.results[0], options);
  ASSERT_TRUE(with_tree.ok());
  ASSERT_NE(with_tree->tree, nullptr);

  // A service without the materialize stage produces tree-less snippets; it
  // must not be served the full pipeline's cached entry.
  std::vector<std::unique_ptr<SnippetStage>> truncated = BuildDefaultStages();
  truncated.pop_back();
  SnippetService partial(&ctx.db, std::move(truncated));
  CachingSnippetService partial_caching(&partial, &cache, "stores");
  auto without_tree =
      partial_caching.Generate(ctx.query, ctx.results[0], options);
  ASSERT_TRUE(without_tree.ok()) << without_tree.status();
  EXPECT_EQ(without_tree->tree, nullptr)
      << "custom-stage service must not alias the default pipeline's entry";
  EXPECT_EQ(cache.Stats().entries, 2u);
}

TEST(SnippetCacheKeyTest, JoinedKeywordListsCannotCollide) {
  Query ab;
  ab.keywords = {"ab", "c"};
  ab.raw_keywords = {"ab", "c"};
  Query a_bc;
  a_bc.keywords = {"a", "bc"};
  a_bc.raw_keywords = {"a", "bc"};
  EXPECT_FALSE(MakeSnippetCacheKey("doc", ab, 1, SnippetOptions{}) ==
               MakeSnippetCacheKey("doc", a_bc, 1, SnippetOptions{}));
}

TEST(SnippetCacheTest, PutGetInvalidateClear) {
  SnippetCache::Options opts;
  opts.capacity = 16;
  SnippetCache cache(opts);
  Query q = Query::Parse("texas");
  SnippetCacheKey a = MakeSnippetCacheKey("stores", q, 1, SnippetOptions{});
  SnippetCacheKey b = MakeSnippetCacheKey("retailer", q, 1, SnippetOptions{});

  EXPECT_EQ(cache.Get(a), nullptr);
  auto snippet = std::make_shared<const Snippet>();
  cache.Put(a, snippet);
  cache.Put(b, snippet);
  EXPECT_NE(cache.Get(a), nullptr);

  // Per-document invalidation drops only that document's entries.
  EXPECT_EQ(cache.Invalidate("stores"), 1u);
  EXPECT_EQ(cache.Get(a), nullptr);
  EXPECT_NE(cache.Get(b), nullptr);

  cache.Clear();
  EXPECT_EQ(cache.Get(b), nullptr);

  SnippetCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 3u);
}

TEST(SnippetCacheTest, DocumentNamesSharingAPrefixDoNotCollide) {
  SnippetCache cache;
  Query q = Query::Parse("texas");
  SnippetCacheKey longer =
      MakeSnippetCacheKey("stores2", q, 1, SnippetOptions{});
  cache.Put(longer, std::make_shared<const Snippet>());
  // Invalidating "stores" must not clip "stores2".
  EXPECT_EQ(cache.Invalidate("stores"), 0u);
  EXPECT_NE(cache.Get(longer), nullptr);
}

TEST(SnippetCacheTest, SeparatorBytesInDocumentIdsAreEscaped) {
  // Reserved bytes in a caller-supplied id are escaped in the encoding, so
  // crafted ids can neither alias another document's signatures nor be
  // clipped (or over-matched) by prefix invalidation.
  SnippetCache cache;
  Query q = Query::Parse("texas");
  const std::string tricky = std::string("a\x1F") + "b";
  SnippetCacheKey tricky_key =
      MakeSnippetCacheKey(tricky, q, 1, SnippetOptions{});
  SnippetCacheKey plain_key = MakeSnippetCacheKey("a", q, 1, SnippetOptions{});
  EXPECT_FALSE(tricky_key == plain_key);

  cache.Put(tricky_key, std::make_shared<const Snippet>());
  cache.Put(plain_key, std::make_shared<const Snippet>());
  EXPECT_EQ(cache.Invalidate("a"), 1u) << "must not clip 'a\\x1Fb'";
  EXPECT_NE(cache.Get(tricky_key), nullptr);
  EXPECT_EQ(cache.Invalidate(tricky), 1u);
  EXPECT_EQ(cache.Get(tricky_key), nullptr);
}

TEST(CachingSnippetServiceTest, HitIsByteIdenticalToGeneration) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_FALSE(ctx.results.empty());
  SnippetService service(&ctx.db);
  SnippetCache cache;
  CachingSnippetService caching(&service, &cache, "stores");
  SnippetOptions options;
  options.size_bound = 10;

  auto uncached = service.Generate(ctx.query, ctx.results[0], options);
  ASSERT_TRUE(uncached.ok()) << uncached.status();

  auto cold = caching.Generate(ctx.query, ctx.results[0], options);
  ASSERT_TRUE(cold.ok()) << cold.status();
  auto warm = caching.Generate(ctx.query, ctx.results[0], options);
  ASSERT_TRUE(warm.ok()) << warm.status();

  ExpectSnippetsIdentical(*cold, *uncached);
  ExpectSnippetsIdentical(*warm, *uncached);

  SnippetCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(CachingSnippetServiceTest, HitsOutliveEvictionAndCacheOwner) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_FALSE(ctx.results.empty());
  SnippetService service(&ctx.db);
  SnippetOptions options;
  options.size_bound = 10;

  Result<Snippet> warm = Snippet{};
  {
    SnippetCache cache;
    CachingSnippetService caching(&service, &cache, "stores");
    ASSERT_TRUE(caching.Generate(ctx.query, ctx.results[0], options).ok());
    warm = caching.Generate(ctx.query, ctx.results[0], options);
    ASSERT_TRUE(warm.ok());
    cache.Clear();
  }
  // The returned snippet is a deep copy: usable after Clear() and after the
  // cache itself is gone.
  EXPECT_NE(warm->tree, nullptr);
  EXPECT_FALSE(WriteXml(*warm->tree).empty());
}

TEST(CachingSnippetServiceTest, BatchServesHitsAndGeneratesMisses) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_EQ(ctx.results.size(), 2u);
  SnippetService service(&ctx.db);
  SnippetCache cache;
  CachingSnippetService caching(&service, &cache, "stores");
  SnippetOptions options;
  options.size_bound = 10;

  // Pre-warm only the second result, then batch over both: one hit, one
  // generated miss, byte-identical to the uncached batch.
  ASSERT_TRUE(caching.Generate(ctx.query, ctx.results[1], options).ok());
  auto expected =
      service.GenerateBatch(ctx.query, ctx.results, options, BatchOptions{});
  ASSERT_TRUE(expected.ok()) << expected.status();
  auto got =
      caching.GenerateBatch(ctx.query, ctx.results, options, BatchOptions{});
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_EQ(got->size(), expected->size());
  for (size_t i = 0; i < got->size(); ++i) {
    ExpectSnippetsIdentical((*got)[i], (*expected)[i]);
  }

  SnippetCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);  // pre-warm miss + the cold batch slot
  EXPECT_EQ(stats.entries, 2u);

  // A fully warm batch does no generation at all.
  auto warm =
      caching.GenerateBatch(ctx.query, ctx.results, options, BatchOptions{});
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cache.Stats().hits, 3u);
  EXPECT_EQ(cache.Stats().misses, 2u);
}

TEST(CachingSnippetServiceTest, DifferentBoundsAreDistinctEntries) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_FALSE(ctx.results.empty());
  SnippetService service(&ctx.db);
  SnippetCache cache;
  CachingSnippetService caching(&service, &cache, "stores");

  for (size_t bound : {4u, 8u, 16u}) {
    SnippetOptions options;
    options.size_bound = bound;
    auto cached = caching.Generate(ctx.query, ctx.results[0], options);
    auto fresh = service.Generate(ctx.query, ctx.results[0], options);
    ASSERT_TRUE(cached.ok());
    ASSERT_TRUE(fresh.ok());
    ExpectSnippetsIdentical(*cached, *fresh);
  }
  EXPECT_EQ(cache.Stats().misses, 3u);
  EXPECT_EQ(cache.Stats().hits, 0u);
  EXPECT_EQ(cache.Stats().entries, 3u);
}

}  // namespace
}  // namespace extract
