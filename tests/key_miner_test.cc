#include "schema/key_miner.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace extract {
namespace {

struct Loaded {
  std::unique_ptr<XmlDocument> dom;
  IndexedDocument doc;
  NodeClassification classification;
  KeyIndex keys;
};

Loaded Load(std::string_view xml) {
  auto parsed = ParseXml(xml);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  auto idx = IndexedDocument::Build(**parsed);
  EXPECT_TRUE(idx.ok()) << idx.status();
  Loaded out{std::move(*parsed), std::move(*idx), {}, {}};
  out.classification = NodeClassification::Classify(
      out.doc, out.dom->has_dtd() ? &out.dom->dtd() : nullptr);
  out.keys = KeyIndex::Mine(out.doc, out.classification);
  return out;
}

TEST(KeyMinerTest, UniqueAttributeIsStrictKey) {
  Loaded db = Load(R"(<db>
    <store><name>A</name><city>H</city></store>
    <store><name>B</name><city>H</city></store>
    <store><name>C</name><city>H</city></store>
  </db>)");
  LabelId store = db.doc.labels().Find("store");
  auto key = db.keys.KeyAttributeOf(store);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(db.doc.labels().Name(*key), "name");
  const auto& candidates = db.keys.CandidatesOf(store);
  ASSERT_GE(candidates.size(), 2u);
  EXPECT_TRUE(candidates[0].strict);
  EXPECT_EQ(candidates[0].distinct_ratio, 1.0);
  // city: duplicated values -> not strict, ranked below.
  EXPECT_FALSE(candidates[1].strict);
}

TEST(KeyMinerTest, DuplicateValuesDisqualifyStrictness) {
  Loaded db = Load(R"(<db>
    <store><name>A</name></store>
    <store><name>A</name></store>
  </db>)");
  LabelId store = db.doc.labels().Find("store");
  const auto& candidates = db.keys.CandidatesOf(store);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_FALSE(candidates[0].strict);
  EXPECT_EQ(candidates[0].distinct_ratio, 0.5);
}

TEST(KeyMinerTest, MissingAttributeLowersCoverage) {
  Loaded db = Load(R"(<db>
    <store><name>A</name></store>
    <store><city>H</city></store>
  </db>)");
  LabelId store = db.doc.labels().Find("store");
  for (const auto& cand : db.keys.CandidatesOf(store)) {
    EXPECT_FALSE(cand.strict);
    EXPECT_EQ(cand.coverage, 0.5);
  }
}

TEST(KeyMinerTest, RepeatedAttributeInOneInstanceDisqualifies) {
  // A store with two <name> children: name repeats -> it is an entity, not
  // an attribute there; but even when classified attribute elsewhere the
  // many-count instance blocks strictness. Here name under the second store
  // becomes a *-node by inference, so no candidate emerges at all.
  Loaded db = Load(R"(<db>
    <store><name>A</name></store>
    <store><name>B</name><name>C</name></store>
  </db>)");
  LabelId store = db.doc.labels().Find("store");
  auto key = db.keys.KeyAttributeOf(store);
  EXPECT_FALSE(key.has_value());
}

TEST(KeyMinerTest, PositionBreaksTies) {
  // Both id and code are strict keys; id comes first in the children order.
  Loaded db = Load(R"(<db>
    <item><id>1</id><code>x</code></item>
    <item><id>2</id><code>y</code></item>
  </db>)");
  LabelId item = db.doc.labels().Find("item");
  auto key = db.keys.KeyAttributeOf(item);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(db.doc.labels().Name(*key), "id");
}

TEST(KeyMinerTest, PerEntityLabelKeys) {
  Loaded db = Load(R"(<db>
    <movie><title>T1</title>
      <cast><actor><name>N1</name><role>lead</role></actor>
            <actor><name>N2</name><role>lead</role></actor></cast>
    </movie>
    <movie><title>T2</title>
      <cast><actor><name>N3</name><role>lead</role></actor></cast>
    </movie>
  </db>)");
  LabelId movie = db.doc.labels().Find("movie");
  LabelId actor = db.doc.labels().Find("actor");
  ASSERT_TRUE(db.keys.KeyAttributeOf(movie).has_value());
  EXPECT_EQ(db.doc.labels().Name(*db.keys.KeyAttributeOf(movie)), "title");
  ASSERT_TRUE(db.keys.KeyAttributeOf(actor).has_value());
  EXPECT_EQ(db.doc.labels().Name(*db.keys.KeyAttributeOf(actor)), "name");
  // role duplicates -> not the key.
  EXPECT_EQ(db.keys.EntityLabels().size(), 2u);
}

TEST(KeyMinerTest, EntityWithNoAttributesHasNoKey) {
  Loaded db = Load("<db><group><x><y>1</y></x></group><group><x><y>2</y></x></group></db>");
  LabelId group = db.doc.labels().Find("group");
  // group's only child x is connection-shaped (has element child).
  EXPECT_FALSE(db.keys.KeyAttributeOf(group).has_value());
  EXPECT_TRUE(db.keys.CandidatesOf(group).empty());
}

TEST(KeyMinerTest, NonEntityLabelHasNoKey) {
  Loaded db = Load(R"(<db><s><name>A</name></s><s><name>B</name></s></db>)");
  LabelId name = db.doc.labels().Find("name");
  EXPECT_FALSE(db.keys.KeyAttributeOf(name).has_value());
}

}  // namespace
}  // namespace extract
