#include "index/dewey.h"

#include <gtest/gtest.h>

namespace extract {
namespace {

std::vector<uint32_t> D(std::initializer_list<uint32_t> v) { return v; }

TEST(DeweyTest, CompareLexicographic) {
  auto a = D({0, 1}), b = D({0, 2}), c = D({0, 1, 0});
  EXPECT_LT(CompareDewey(a, b), 0);
  EXPECT_GT(CompareDewey(b, a), 0);
  EXPECT_EQ(CompareDewey(a, a), 0);
  // Prefix sorts before extension (document order: ancestor first).
  EXPECT_LT(CompareDewey(a, c), 0);
}

TEST(DeweyTest, RootComparesBeforeEverything) {
  auto root = D({});
  auto child = D({0});
  EXPECT_LT(CompareDewey(root, child), 0);
  EXPECT_EQ(CompareDewey(root, root), 0);
}

TEST(DeweyTest, AncestorChecks) {
  auto root = D({}), a = D({0}), ab = D({0, 1}), b = D({1});
  EXPECT_TRUE(IsDeweyAncestor(root, a));
  EXPECT_TRUE(IsDeweyAncestor(a, ab));
  EXPECT_FALSE(IsDeweyAncestor(ab, a));
  EXPECT_FALSE(IsDeweyAncestor(a, b));
  EXPECT_FALSE(IsDeweyAncestor(a, a));  // strict
  EXPECT_TRUE(IsDeweyAncestorOrSelf(a, a));
  EXPECT_TRUE(IsDeweyAncestorOrSelf(a, ab));
  EXPECT_FALSE(IsDeweyAncestorOrSelf(ab, a));
}

TEST(DeweyTest, CommonPrefix) {
  EXPECT_EQ(DeweyCommonPrefix(D({0, 1, 2}), D({0, 1, 5})), 2u);
  EXPECT_EQ(DeweyCommonPrefix(D({0}), D({1})), 0u);
  EXPECT_EQ(DeweyCommonPrefix(D({0, 1}), D({0, 1})), 2u);
  EXPECT_EQ(DeweyCommonPrefix(D({}), D({3, 4})), 0u);
}

TEST(DeweyTest, ToString) {
  EXPECT_EQ(DeweyToString(D({})), "ε");
  EXPECT_EQ(DeweyToString(D({0, 2, 5})), "0.2.5");
}

TEST(DeweyStoreTest, AppendAndGet) {
  DeweyStore store;
  EXPECT_EQ(store.Append(D({})), 0u);
  EXPECT_EQ(store.Append(D({0})), 1u);
  EXPECT_EQ(store.Append(D({0, 3})), 2u);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_TRUE(store.Get(0).empty());
  ASSERT_EQ(store.Get(2).size(), 2u);
  EXPECT_EQ(store.Get(2)[1], 3u);
  // Earlier spans remain valid after later appends (pool growth).
  for (uint32_t i = 0; i < 100; ++i) store.Append(D({i, i, i}));
  ASSERT_EQ(store.Get(1).size(), 1u);
  EXPECT_EQ(store.Get(1)[0], 0u);
}

}  // namespace
}  // namespace extract
