// Concurrency torture of the admission layer, unit level (the controller's
// bound, EDF queue, shedding, shutdown) and server level (sessions beyond
// the bound queue in deadline order, deterministic shed under a 16-client
// burst at capacity 1+2, client disconnect mid-SSE cancels the stream and
// frees the slot). Runs under TSan in CI.

#include "http/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"
#include "http/http_server.h"
#include "http/json.h"
#include "http/query_endpoints.h"
#include "http_test_util.h"
#include "search/corpus.h"

namespace extract {
namespace {

using Clock = std::chrono::steady_clock;
using testing::Get;
using testing::HttpResponse;

/// Spins until `pred` holds or ~5s elapse.
template <typename Pred>
bool WaitFor(Pred pred) {
  const auto give_up = Clock::now() + std::chrono::seconds(5);
  while (!pred()) {
    if (Clock::now() > give_up) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

TEST(AdmissionControllerTest, BoundNeverExceededUnderContention) {
  AdmissionOptions options;
  options.max_concurrent = 3;
  options.max_queue = 64;
  AdmissionController controller(options);

  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto ticket = controller.Acquire();
        ASSERT_TRUE(ticket.ok()) << ticket.status();
        int now = active.fetch_add(1) + 1;
        int seen = peak.load();
        while (seen < now && !peak.compare_exchange_weak(seen, now)) {
        }
        active.fetch_sub(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(peak.load(), 3);
  AdmissionStats stats = controller.Stats();
  EXPECT_EQ(stats.admitted, 8u * 50u);
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_LE(stats.peak_active, 3u);
}

TEST(AdmissionControllerTest, WaitersAdmittedInDeadlineOrder) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue = 16;
  AdmissionController controller(options);

  auto holder = controller.Acquire();
  ASSERT_TRUE(holder.ok());

  // Waiters arrive in scrambled order; deadlines say 3, 1, 4, 0, 2.
  const int arrival_to_rank[] = {3, 1, 4, 0, 2};
  const auto base = Clock::now() + std::chrono::hours(1);
  std::mutex order_mu;
  std::vector<int> admitted_ranks;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 5; ++i) {
    const int rank = arrival_to_rank[i];
    waiters.emplace_back([&, rank] {
      auto ticket =
          controller.Acquire(base + std::chrono::milliseconds(rank));
      ASSERT_TRUE(ticket.ok()) << ticket.status();
      std::lock_guard<std::mutex> lock(order_mu);
      admitted_ranks.push_back(rank);
      // Ticket destruction hands the slot to the next-best waiter.
    });
    // Serialize arrival so (deadline, seq) keys are fully determined.
    ASSERT_TRUE(WaitFor([&] {
      return controller.Stats().queued == static_cast<size_t>(i + 1);
    }));
  }

  holder->Reset();  // start the chain
  for (auto& thread : waiters) thread.join();
  EXPECT_EQ(admitted_ranks, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(controller.Stats().admitted_after_wait, 5u);
}

TEST(AdmissionControllerTest, QueueFullShedsImmediately) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue = 2;
  AdmissionController controller(options);

  auto holder = controller.Acquire();
  ASSERT_TRUE(holder.ok());
  std::vector<std::thread> queued;
  for (int i = 0; i < 2; ++i) {
    queued.emplace_back([&] {
      auto ticket = controller.Acquire();
      EXPECT_TRUE(ticket.ok());
    });
  }
  ASSERT_TRUE(WaitFor([&] { return controller.Stats().queued == 2; }));

  // Third arrival: queue full, immediate kUnavailable — never blocks.
  const auto before = Clock::now();
  auto shed = controller.Acquire(Clock::now() + std::chrono::hours(1));
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_LT(Clock::now() - before, std::chrono::seconds(1));
  EXPECT_EQ(controller.Stats().shed_queue_full, 1u);

  holder->Reset();
  for (auto& thread : queued) thread.join();
}

TEST(AdmissionControllerTest, DeadlineExpiryWhileQueued) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  AdmissionController controller(options);
  auto holder = controller.Acquire();
  ASSERT_TRUE(holder.ok());

  // Already-expired deadline: shed without queueing.
  auto expired = controller.Acquire(Clock::now() - std::chrono::seconds(1));
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);

  // Expires while queued: returns kDeadlineExceeded after ~the budget and
  // leaves the queue clean.
  auto timed_out = controller.Acquire(Clock::now() +
                                      std::chrono::milliseconds(50));
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);
  AdmissionStats stats = controller.Stats();
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.shed_deadline, 2u);
  EXPECT_EQ(stats.admitted, 1u);
}

TEST(AdmissionControllerTest, ShutdownAbortsWaitersAndFutureAcquires) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  AdmissionController controller(options);
  auto holder = controller.Acquire();
  ASSERT_TRUE(holder.ok());

  std::vector<std::thread> waiters;
  std::atomic<int> aborted{0};
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] {
      auto ticket = controller.Acquire();  // no deadline: waits forever
      if (ticket.status().code() == StatusCode::kUnavailable) ++aborted;
    });
  }
  ASSERT_TRUE(WaitFor([&] { return controller.Stats().queued == 3; }));

  controller.Shutdown();
  for (auto& thread : waiters) thread.join();
  EXPECT_EQ(aborted.load(), 3);
  EXPECT_EQ(controller.Acquire().status().code(), StatusCode::kUnavailable);
  // Held tickets still release cleanly after shutdown.
  holder->Reset();
  EXPECT_EQ(controller.Stats().active, 0u);
}

TEST(AdmissionControllerTest, TicketMoveTransfersOwnership) {
  AdmissionController controller(AdmissionOptions{.max_concurrent = 1});
  auto ticket = controller.Acquire();
  ASSERT_TRUE(ticket.ok());
  AdmissionController::Ticket moved = std::move(*ticket);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(ticket->valid());
  EXPECT_EQ(controller.Stats().active, 1u);
  moved.Reset();
  EXPECT_FALSE(moved.valid());
  EXPECT_EQ(controller.Stats().active, 0u);
}

// ---------------------------------------------------------------- server

class HttpAdmissionTest : public ::testing::Test {
 protected:
  /// `matching_retailers` scales the corpus: large values make a blocking
  /// "texas apparel retailer" stream long enough to disconnect mid-flight.
  void StartServer(size_t max_concurrent, size_t max_queue,
                   size_t matching_retailers = 1) {
    RetailerDatasetOptions retailer;
    retailer.num_matching_retailers = matching_retailers;
    ASSERT_TRUE(
        corpus_.AddDocument("retailer", GenerateRetailerXml(retailer)).ok());
    ASSERT_TRUE(corpus_.AddDocument("stores", GenerateStoresXml()).ok());
    HttpServerOptions options;
    options.admission.max_concurrent = max_concurrent;
    options.admission.max_queue = max_queue;
    server_ = std::make_unique<HttpServer>(options);
    service_ = std::make_unique<QueryService>(&corpus_, &engine_,
                                              QueryServiceOptions{});
    service_->Register(server_.get());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  XmlCorpus corpus_;
  XSeekEngine engine_;
  std::unique_ptr<HttpServer> server_;
  std::unique_ptr<QueryService> service_;
};

TEST_F(HttpAdmissionTest, RequestsQueueBeyondBoundAndServeAfterRelease) {
  StartServer(/*max_concurrent=*/1, /*max_queue=*/8);

  // Occupy the only slot out-of-band, so the HTTP request MUST queue.
  auto holder = server_->admission().Acquire();
  ASSERT_TRUE(holder.ok());

  std::thread client([&] {
    HttpResponse response = Get(
        server_->port(), "/query?q=texas&page_size=2&deadline_ms=5000");
    EXPECT_EQ(response.status, 200);
  });
  ASSERT_TRUE(WaitFor([&] { return server_->admission().Stats().queued == 1; }));

  holder->Reset();  // hand the slot to the queued request
  client.join();
  AdmissionStats stats = server_->admission().Stats();
  EXPECT_EQ(stats.admitted_after_wait, 1u);
  EXPECT_EQ(stats.active, 0u);
  EXPECT_GT(stats.max_wait_ns, 0u);
}

TEST_F(HttpAdmissionTest, SixteenFoldOverloadShedsDeterministically) {
  // Capacity 1 + queue 2, the slot held for the whole burst: of 16
  // concurrent requests exactly 2 queue (then expire: kDeadlineExceeded)
  // and 14 shed immediately (kUnavailable). Nothing hangs, nothing 5xxes
  // except the deliberate 503s, every body decodes.
  StartServer(/*max_concurrent=*/1, /*max_queue=*/2);
  auto holder = server_->admission().Acquire();
  ASSERT_TRUE(holder.ok());

  std::mutex mu;
  std::vector<HttpResponse> responses;
  std::vector<std::thread> clients;
  for (int i = 0; i < 16; ++i) {
    clients.emplace_back([&] {
      HttpResponse response =
          Get(server_->port(), "/query?q=texas&deadline_ms=2000");
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(std::move(response));
    });
  }
  for (auto& thread : clients) thread.join();

  int unavailable = 0, deadline = 0;
  for (const HttpResponse& response : responses) {
    ASSERT_TRUE(response.valid);
    EXPECT_EQ(response.status, 503);
    EXPECT_EQ(response.headers.count("retry-after"), 1u);
    auto decoded = JsonValue::Parse(response.body);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    const std::string& code = decoded->Find("status")->string_value;
    if (code == "Unavailable") ++unavailable;
    if (code == "DeadlineExceeded") ++deadline;
  }
  EXPECT_EQ(unavailable, 14);
  EXPECT_EQ(deadline, 2);

  // The server recovered: release the slot, the next request serves.
  holder->Reset();
  EXPECT_EQ(Get(server_->port(), "/query?q=texas&page_size=1").status, 200);
  AdmissionStats stats = server_->admission().Stats();
  EXPECT_EQ(stats.shed_queue_full, 14u);
  EXPECT_EQ(stats.shed_deadline, 2u);
  EXPECT_EQ(stats.queued, 0u);
}

TEST_F(HttpAdmissionTest, ClientDisconnectMidSseCancelsStreamAndFreesSlot) {
  StartServer(/*max_concurrent=*/1, /*max_queue=*/4,
              /*matching_retailers=*/60);

  // Open an SSE stream over a many-slot blocking query, read only the
  // response head, then vanish (full close -> FIN/RST).
  int fd = testing::ConnectLoopback(server_->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(testing::SendAll(
      fd, "GET /query?q=" + testing::UrlEncode("texas apparel retailer") +
              "&mode=sse&gated=0 HTTP/1.1\r\nHost: t\r\n\r\n"));
  char buf[256];
  ssize_t n = ::recv(fd, buf, sizeof(buf), 0);  // at least the head
  ASSERT_GT(n, 0);
  ::close(fd);

  // The handler must notice, cancel the stream and release the ticket.
  EXPECT_TRUE(WaitFor([&] {
    return server_->Stats().sse_client_disconnects >= 1 &&
           server_->admission().Stats().active == 0;
  }));

  // The freed slot serves the next client immediately.
  HttpResponse after = Get(server_->port(),
                           "/query?q=texas&page_size=1&deadline_ms=5000");
  EXPECT_EQ(after.status, 200);
}

TEST_F(HttpAdmissionTest, StopWithQueuedWaitersDoesNotHang) {
  StartServer(/*max_concurrent=*/1, /*max_queue=*/4);
  auto holder = server_->admission().Acquire();
  ASSERT_TRUE(holder.ok());

  // Park two no-deadline requests in the admission queue, then Stop: the
  // shutdown hook must abort them (503) instead of deadlocking the join.
  std::vector<std::thread> clients;
  for (int i = 0; i < 2; ++i) {
    clients.emplace_back([&] {
      HttpResponse response = Get(server_->port(), "/query?q=texas");
      // Aborted waiters answer 503; a client racing the socket teardown
      // may instead see a dead connection. Both are clean outcomes.
      if (response.valid) EXPECT_EQ(response.status, 503);
    });
  }
  ASSERT_TRUE(WaitFor([&] { return server_->admission().Stats().queued == 2; }));

  const auto before = Clock::now();
  server_->Stop();
  EXPECT_LT(Clock::now() - before, std::chrono::seconds(5));
  for (auto& thread : clients) thread.join();
}

}  // namespace
}  // namespace extract
