#include "schema/node_classifier.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace extract {
namespace {

struct Loaded {
  std::unique_ptr<XmlDocument> dom;
  IndexedDocument doc;
  NodeClassification classification;
};

Loaded Load(std::string_view xml, bool use_dtd = true) {
  auto parsed = ParseXml(xml);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  auto idx = IndexedDocument::Build(**parsed);
  EXPECT_TRUE(idx.ok()) << idx.status();
  Loaded out{std::move(*parsed), std::move(*idx), {}};
  ClassifyOptions options;
  options.use_dtd = use_dtd;
  out.classification = NodeClassification::Classify(
      out.doc, out.dom->has_dtd() ? &out.dom->dtd() : nullptr, options);
  return out;
}

// Finds the first element with the given tag.
NodeId FindElement(const IndexedDocument& doc, std::string_view tag) {
  for (NodeId n = 0; n < static_cast<NodeId>(doc.num_nodes()); ++n) {
    if (doc.is_element(n) && doc.label_name(n) == tag) return n;
  }
  return kInvalidNode;
}

constexpr std::string_view kRetailerXml = R"(<!DOCTYPE retailers [
  <!ELEMENT retailers (retailer*)>
  <!ELEMENT retailer (name, product, store*)>
  <!ELEMENT store (name, state, city, merchandises)>
  <!ELEMENT merchandises (clothes*)>
  <!ELEMENT clothes (fitting, category)>
  <!ELEMENT name (#PCDATA)> <!ELEMENT product (#PCDATA)>
  <!ELEMENT state (#PCDATA)> <!ELEMENT city (#PCDATA)>
  <!ELEMENT fitting (#PCDATA)> <!ELEMENT category (#PCDATA)>
]>
<retailers>
  <retailer>
    <name>Brook Brothers</name>
    <product>apparel</product>
    <store>
      <name>Galleria</name><state>Texas</state><city>Houston</city>
      <merchandises>
        <clothes><fitting>man</fitting><category>suit</category></clothes>
        <clothes><fitting>woman</fitting><category>skirt</category></clothes>
      </merchandises>
    </store>
  </retailer>
</retailers>)";

TEST(ClassifierDtdTest, PaperCategories) {
  Loaded db = Load(kRetailerXml);
  const auto& c = db.classification;
  const auto& doc = db.doc;
  // Entities: *-nodes in the DTD.
  EXPECT_TRUE(c.IsEntity(FindElement(doc, "retailer")));
  EXPECT_TRUE(c.IsEntity(FindElement(doc, "store")));
  EXPECT_TRUE(c.IsEntity(FindElement(doc, "clothes")));
  // Attributes: non-* with a single text child.
  EXPECT_TRUE(c.IsAttribute(FindElement(doc, "name")));
  EXPECT_TRUE(c.IsAttribute(FindElement(doc, "product")));
  EXPECT_TRUE(c.IsAttribute(FindElement(doc, "state")));
  EXPECT_TRUE(c.IsAttribute(FindElement(doc, "city")));
  EXPECT_TRUE(c.IsAttribute(FindElement(doc, "fitting")));
  // Connections: everything else.
  EXPECT_TRUE(c.IsConnection(FindElement(doc, "merchandises")));
  EXPECT_TRUE(c.IsConnection(FindElement(doc, "retailers")));
  // Text nodes are values.
  NodeId name = FindElement(doc, "name");
  EXPECT_EQ(c.category(doc.sole_text_child(name)), NodeCategory::kValue);
}

TEST(ClassifierDtdTest, EntityLabelsCollected) {
  Loaded db = Load(kRetailerXml);
  EXPECT_EQ(db.classification.entity_labels().size(), 3u);
  EXPECT_TRUE(db.classification.IsEntityLabel(db.doc.labels().Find("store")));
  EXPECT_FALSE(db.classification.IsEntityLabel(db.doc.labels().Find("city")));
}

TEST(ClassifierDtdTest, CategoryCounts) {
  Loaded db = Load(kRetailerXml);
  // Entities: 1 retailer + 1 store + 2 clothes = 4.
  EXPECT_EQ(db.classification.CountCategory(NodeCategory::kEntity), 4u);
  // Connections: retailers + merchandises = 2.
  EXPECT_EQ(db.classification.CountCategory(NodeCategory::kConnection), 2u);
}

TEST(ClassifierInferenceTest, StarInferredFromSiblingCounts) {
  // No DTD: clothes repeats under merchandises -> entity; store occurs once
  // under retailer in this document -> NOT inferred as entity (the known
  // limitation of data inference the DTD resolves).
  constexpr std::string_view xml = R"(<retailers>
    <retailer>
      <name>X</name>
      <store>
        <merchandises>
          <clothes><fitting>man</fitting></clothes>
          <clothes><fitting>woman</fitting></clothes>
        </merchandises>
      </store>
    </retailer>
  </retailers>)";
  Loaded db = Load(xml);
  const auto& doc = db.doc;
  EXPECT_TRUE(db.classification.IsEntity(FindElement(doc, "clothes")));
  EXPECT_FALSE(db.classification.IsEntity(FindElement(doc, "store")));
  EXPECT_TRUE(db.classification.IsAttribute(FindElement(doc, "name")));
  EXPECT_TRUE(db.classification.IsAttribute(FindElement(doc, "fitting")));
  EXPECT_TRUE(db.classification.IsConnection(FindElement(doc, "merchandises")));
}

TEST(ClassifierInferenceTest, DtdIgnoredWhenDisabled) {
  Loaded db = Load(kRetailerXml, /*use_dtd=*/false);
  // Only one store instance under its retailer -> inference cannot see the
  // star; DTD would say entity.
  EXPECT_FALSE(db.classification.IsEntity(FindElement(db.doc, "store")));
  // clothes still repeats in the data.
  EXPECT_TRUE(db.classification.IsEntity(FindElement(db.doc, "clothes")));
}

TEST(ClassifierTest, EmptyElementIsAttributeShaped) {
  // <middle_name/> with no text: still attribute (empty value).
  Loaded db = Load("<people><p><middle/></p><p><middle>Q</middle></p></people>");
  EXPECT_TRUE(db.classification.IsAttribute(FindElement(db.doc, "middle")));
}

TEST(ClassifierTest, MultiTextChildrenNotAttribute) {
  // An element with element children mixed in is not an attribute.
  Loaded db = Load("<a><x><y>1</y>text</x><x><y>1</y>text</x></a>");
  EXPECT_FALSE(db.classification.IsAttribute(FindElement(db.doc, "x")));
}

TEST(ClassifierTest, PairGranularity) {
  // "name" under store vs under item can classify differently: under store
  // it is an attribute; under list it repeats -> entity.
  constexpr std::string_view xml = R"(<db>
    <store><name>A</name></store>
    <store><name>B</name></store>
    <list><name>x</name><name>y</name></list>
  </db>)";
  Loaded db = Load(xml);
  const auto& doc = db.doc;
  LabelId name = doc.labels().Find("name");
  LabelId store = doc.labels().Find("store");
  LabelId list = doc.labels().Find("list");
  EXPECT_EQ(db.classification.PairCategory(store, name),
            NodeCategory::kAttribute);
  EXPECT_EQ(db.classification.PairCategory(list, name), NodeCategory::kEntity);
}

TEST(ClassifierTest, UnseenPairDefaultsToConnection) {
  Loaded db = Load("<a><b>x</b></a>");
  EXPECT_EQ(db.classification.PairCategory(999, 998),
            NodeCategory::kConnection);
}

TEST(ClassifierTest, ExpandedAttributesClassifyAsAttributes) {
  Loaded db = Load(R"(<db><item name="a"/><item name="b"/></db>)");
  EXPECT_TRUE(db.classification.IsAttribute(FindElement(db.doc, "name")));
  EXPECT_TRUE(db.classification.IsEntity(FindElement(db.doc, "item")));
}

TEST(NodeCategoryTest, Names) {
  EXPECT_EQ(NodeCategoryToString(NodeCategory::kEntity), "entity");
  EXPECT_EQ(NodeCategoryToString(NodeCategory::kAttribute), "attribute");
  EXPECT_EQ(NodeCategoryToString(NodeCategory::kConnection), "connection");
  EXPECT_EQ(NodeCategoryToString(NodeCategory::kValue), "value");
}

}  // namespace
}  // namespace extract
