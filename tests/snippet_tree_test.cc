#include "snippet/snippet_tree.h"

#include <gtest/gtest.h>

#include "search/search_engine.h"
#include "xml/serializer.h"

namespace extract {
namespace {

TEST(MaterializeSelectionTest, BuildsInducedTree) {
  auto db = XmlDatabase::Load("<a><b>t</b><c><d>u</d></c></a>");
  ASSERT_TRUE(db.ok());
  // ids: 0:a 1:b 2:"t" 3:c 4:d 5:"u"
  Selection selection;
  selection.nodes = {0, 3, 4, 5};
  auto tree = MaterializeSelection(db->index(), 0, selection);
  EXPECT_EQ(WriteXml(*tree), "<a><c><d>u</d></c></a>");
  EXPECT_EQ(tree->CountEdges(), 3u);
}

TEST(MaterializeSelectionTest, RootOnly) {
  auto db = XmlDatabase::Load("<a><b>t</b></a>");
  ASSERT_TRUE(db.ok());
  Selection selection;
  selection.nodes = {0};
  auto tree = MaterializeSelection(db->index(), 0, selection);
  EXPECT_EQ(WriteXml(*tree), "<a/>");
}

TEST(MaterializeSelectionTest, NonRootResult) {
  auto db = XmlDatabase::Load("<a><b><x>1</x><y>2</y></b></a>");
  ASSERT_TRUE(db.ok());
  // Result rooted at <b> (id 1); select b, y, "2" (ids 1, 4, 5).
  Selection selection;
  selection.nodes = {1, 4, 5};
  auto tree = MaterializeSelection(db->index(), 1, selection);
  EXPECT_EQ(WriteXml(*tree), "<b><y>2</y></b>");
}

TEST(SnippetTest, EdgeAndCoverageCounts) {
  Snippet snippet;
  snippet.nodes = {0, 1, 2};
  snippet.covered = {true, false, true, false};
  EXPECT_EQ(snippet.edges(), 2u);
  EXPECT_EQ(snippet.covered_count(), 2u);
  Snippet empty;
  EXPECT_EQ(empty.edges(), 0u);
}

TEST(SnippetTest, RenderEmptySnippet) {
  Snippet snippet;
  EXPECT_EQ(RenderSnippet(snippet), "(empty snippet)");
}

TEST(SnippetTest, RenderCoverageMarksItems) {
  Snippet snippet;
  IListItem a;
  a.display = "Texas";
  IListItem b;
  b.display = "woman";
  snippet.ilist.Add(a);
  snippet.ilist.Add(b);
  snippet.covered = {true, false};
  EXPECT_EQ(RenderCoverage(snippet), "IList: Texas(+), woman(-)");
}

}  // namespace
}  // namespace extract
