// Robustness ("fuzz-lite") tests: the parser must never crash, hang or
// return an undiagnosed tree on mutated input — every outcome is either a
// well-formed document or a ParseError.

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/stores_dataset.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace extract {
namespace {

// A pool of valid seed documents to mutate.
std::vector<std::string> SeedDocuments() {
  return {
      "<a><b>text</b><c x=\"1\"/></a>",
      "<?xml version=\"1.0\"?><r><x>1 &amp; 2</x><![CDATA[raw]]></r>",
      "<!DOCTYPE db [<!ELEMENT db (e*)><!ELEMENT e (#PCDATA)>]>"
      "<db><e>one</e><e>two</e></db>",
      "<deep><deep><deep><deep>v</deep></deep></deep></deep>",
      GenerateStoresXml().substr(0, 1200),
  };
}

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, MutatedInputNeverCrashes) {
  Rng rng(GetParam());
  std::vector<std::string> seeds = SeedDocuments();
  for (int trial = 0; trial < 200; ++trial) {
    std::string doc = seeds[rng.Uniform(seeds.size())];
    // Apply 1-4 random mutations: byte flips, deletions, duplications,
    // truncations, and injections of XML metacharacters.
    size_t mutations = 1 + rng.Uniform(4);
    for (size_t m = 0; m < mutations && !doc.empty(); ++m) {
      size_t pos = rng.Uniform(doc.size());
      switch (rng.Uniform(5)) {
        case 0:
          doc[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:
          doc.erase(pos, 1 + rng.Uniform(4));
          break;
        case 2:
          doc.insert(pos, doc.substr(pos, 1 + rng.Uniform(8)));
          break;
        case 3:
          doc.resize(pos);
          break;
        case 4: {
          const char* bits[] = {"<", ">", "&", "]]>", "<!--", "<?", "\"", "<!"};
          doc.insert(pos, bits[rng.Uniform(8)]);
          break;
        }
      }
    }
    auto parsed = ParseXml(doc);  // must not crash/hang
    if (parsed.ok()) {
      // Whatever parsed must survive a serialize -> reparse round trip.
      std::string again = WriteXml(*(*parsed)->root());
      auto reparsed = ParseXmlFragment(again);
      ASSERT_TRUE(reparsed.ok())
          << "roundtrip failed: " << reparsed.status() << "\n"
          << again;
      EXPECT_TRUE((*reparsed)->StructurallyEquals(*(*parsed)->root()));
    } else {
      EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range<uint64_t>(0, 10));

TEST(ParserFuzzTest, PathologicalInputs) {
  // Inputs crafted to hit specific edge paths.
  for (const char* input : {
           "<", "<>", "< a/>", "<a", "<a /", "<a b", "<a b=", "<a b=\"",
           "<a/><", "<a>&", "<a>&#;</a>", "<a>&#xZZ;</a>", "<!", "<!-",
           "<!--", "<![", "<![CDATA", "<!D", "<!DOCTYPE", "<!DOCTYPE [",
           "<?", "<?x", "</>", "</a>", "<a></b></a>", "<a><a><a></a></a>",
           "\xFF\xFE<a/>", "<a>\x01\x02</a>", "<a b=\"&\"/>",
       }) {
    auto parsed = ParseXml(input);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kParseError) << input;
    }
  }
}

TEST(ParserFuzzTest, VeryDeepNestingDoesNotOverflow) {
  // 20k levels exercise recursion depth; the parser's tree build is
  // iterative (explicit stack), so this must succeed. (Destruction of the
  // DOM recurses once per level, which bounds how deep this test can go.)
  std::string xml;
  const int depth = 20000;
  xml.reserve(static_cast<size_t>(depth) * 8);
  for (int i = 0; i < depth; ++i) xml += "<n>";
  for (int i = 0; i < depth; ++i) xml += "</n>";
  // The default ParseLimits reject this long before 20k levels (see
  // parser_hostile_test); lift the cap to exercise the raw build loop.
  XmlParseOptions options;
  options.limits.max_depth = 0;
  auto parsed = ParseXml(xml, options);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  // Note: CountNodes()/serialization on such trees is recursive; only the
  // parse path is exercised here by design.
}

TEST(ParserFuzzTest, HugeTokenDoesNotChoke) {
  std::string xml = "<a>" + std::string(1 << 20, 'x') + "</a>";
  auto parsed = ParseXml(xml);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->root()->InnerText().size(), size_t{1} << 20);
}

}  // namespace
}  // namespace extract
