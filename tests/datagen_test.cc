#include <gtest/gtest.h>

#include <map>

#include "datagen/auction_dataset.h"
#include "datagen/movies_dataset.h"
#include "datagen/random_xml.h"
#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"
#include "datagen/workload.h"
#include "search/search_engine.h"
#include "snippet/pipeline.h"

namespace extract {
namespace {

// Counts (attribute label -> value -> occurrences) under `root`.
std::map<std::string, std::map<std::string, size_t>> CountValues(
    const IndexedDocument& doc, NodeId root) {
  std::map<std::string, std::map<std::string, size_t>> out;
  NodeId end = doc.subtree_end(root);
  for (NodeId n = root; n < end; ++n) {
    if (!doc.is_element(n)) continue;
    NodeId t = doc.sole_text_child(n);
    if (t != kInvalidNode) out[doc.label_name(n)][doc.text(t)]++;
  }
  return out;
}

TEST(RetailerDatasetTest, Figure1StatisticsExact) {
  auto db = XmlDatabase::Load(GenerateRetailerXml());
  ASSERT_TRUE(db.ok()) << db.status();
  // Locate the Brook Brothers retailer (first retailer element).
  NodeId retailer = kInvalidNode;
  const auto& doc = db->index();
  for (NodeId n = 0; n < static_cast<NodeId>(doc.num_nodes()); ++n) {
    if (doc.is_element(n) && doc.label_name(n) == "retailer") {
      retailer = n;
      break;
    }
  }
  ASSERT_NE(retailer, kInvalidNode);
  auto counts = CountValues(doc, retailer);

  // Figure 1, right portion — every number exact.
  EXPECT_EQ(counts["city"]["Houston"], 6u);
  EXPECT_EQ(counts["city"]["Austin"], 1u);
  EXPECT_EQ(counts["city"].size(), 5u);  // Houston, Austin + 3 others
  EXPECT_EQ(counts["fitting"]["man"], 600u);
  EXPECT_EQ(counts["fitting"]["woman"], 360u);
  EXPECT_EQ(counts["fitting"]["children"], 40u);
  EXPECT_EQ(counts["situation"]["casual"], 700u);
  EXPECT_EQ(counts["situation"]["formal"], 300u);
  EXPECT_EQ(counts["category"]["outwear"], 220u);
  EXPECT_EQ(counts["category"]["suit"], 120u);
  EXPECT_EQ(counts["category"]["skirt"], 80u);
  EXPECT_EQ(counts["category"]["sweaters"], 70u);
  EXPECT_EQ(counts["category"].size(), 11u);  // 4 named + 7 others
  size_t other_total = 0;
  for (const auto& [value, count] : counts["category"]) {
    if (value != "outwear" && value != "suit" && value != "skirt" &&
        value != "sweaters") {
      other_total += count;
    }
  }
  EXPECT_EQ(other_total, 580u);
  EXPECT_EQ(counts["state"]["Texas"], 10u);
  EXPECT_EQ(counts["name"]["Brook Brothers"], 1u);
  EXPECT_EQ(counts["product"]["apparel"], 1u);
}

TEST(RetailerDatasetTest, OptionsControlRetailerCounts) {
  RetailerDatasetOptions options;
  options.num_matching_retailers = 3;
  options.num_other_retailers = 4;
  auto db = XmlDatabase::Load(GenerateRetailerXml(options));
  ASSERT_TRUE(db.ok());
  size_t retailers = 0;
  const auto& doc = db->index();
  for (NodeId n = 0; n < static_cast<NodeId>(doc.num_nodes()); ++n) {
    if (doc.is_element(n) && doc.label_name(n) == "retailer") ++retailers;
  }
  EXPECT_EQ(retailers, 7u);
}

TEST(RetailerDatasetTest, DeterministicForSeed) {
  RetailerDatasetOptions options;
  options.num_matching_retailers = 2;
  EXPECT_EQ(GenerateRetailerXml(options), GenerateRetailerXml(options));
  options.seed = 43;
  // Generated retailers change with the seed (the Figure-1 one does not).
  RetailerDatasetOptions base;
  base.num_matching_retailers = 2;
  EXPECT_NE(GenerateRetailerXml(options), GenerateRetailerXml(base));
}

TEST(RetailerDatasetTest, DtdToggle) {
  RetailerDatasetOptions options;
  options.include_dtd = false;
  auto db = XmlDatabase::Load(GenerateRetailerXml(options));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->dtd(), nullptr);
  auto with = XmlDatabase::Load(GenerateRetailerXml());
  ASSERT_TRUE(with.ok());
  EXPECT_NE(with->dtd(), nullptr);
}

TEST(StoresDatasetTest, DemoStoresPresent) {
  auto db = XmlDatabase::Load(GenerateStoresXml());
  ASSERT_TRUE(db.ok());
  auto counts = CountValues(db->index(), db->index().root());
  EXPECT_EQ(counts["name"]["Levis"], 1u);
  EXPECT_EQ(counts["name"]["ESprit"], 1u);
  EXPECT_EQ(counts["state"]["Texas"], 2u);  // only the two demo stores
  // Levis is jeans-heavy; ESprit outwear-heavy.
  EXPECT_GE(counts["category"]["jeans"], 10u);
  EXPECT_GE(counts["category"]["outwear"], 10u);
}

TEST(StoresDatasetTest, OtherStoresDoNotMatchTexas) {
  StoresDatasetOptions options;
  options.num_other_stores = 4;
  auto db = XmlDatabase::Load(GenerateStoresXml(options));
  ASSERT_TRUE(db.ok());
  XSeekEngine engine;
  auto results = engine.Search(*db, Query::Parse("store texas"));
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 2u);
}

TEST(MoviesDatasetTest, StructureAndKeys) {
  MoviesDatasetOptions options;
  options.num_movies = 30;
  auto db = XmlDatabase::Load(GenerateMoviesXml(options));
  ASSERT_TRUE(db.ok()) << db.status();
  const auto& doc = db->index();
  size_t movies = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(doc.num_nodes()); ++n) {
    if (doc.is_element(n) && doc.label_name(n) == "movie") ++movies;
  }
  EXPECT_EQ(movies, 30u);
  // movie and actor are entities with mined keys title / name.
  LabelId movie = doc.labels().Find("movie");
  LabelId actor = doc.labels().Find("actor");
  EXPECT_TRUE(db->classification().IsEntityLabel(movie));
  EXPECT_TRUE(db->classification().IsEntityLabel(actor));
  ASSERT_TRUE(db->keys().KeyAttributeOf(movie).has_value());
  EXPECT_EQ(doc.labels().Name(*db->keys().KeyAttributeOf(movie)), "title");
  ASSERT_TRUE(db->keys().KeyAttributeOf(actor).has_value());
  EXPECT_EQ(doc.labels().Name(*db->keys().KeyAttributeOf(actor)), "name");
}

TEST(MoviesDatasetTest, DramaDominates) {
  auto db = XmlDatabase::Load(GenerateMoviesXml());
  ASSERT_TRUE(db.ok());
  auto counts = CountValues(db->index(), db->index().root());
  EXPECT_GT(counts["genre"]["drama"], counts["genre"]["comedy"]);
  EXPECT_GT(counts["genre"]["drama"], counts["genre"]["thriller"]);
}

TEST(RandomXmlTest, ShapeMatchesOptions) {
  RandomXmlOptions options;
  options.levels = 2;
  options.entities_per_parent = 5;
  options.attributes_per_entity = 2;
  RandomXmlData data = GenerateRandomXml(options);
  auto db = XmlDatabase::Load(data.xml);
  ASSERT_TRUE(db.ok()) << db.status();
  const auto& doc = db->index();
  size_t e0 = 0, e1 = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(doc.num_nodes()); ++n) {
    if (!doc.is_element(n)) continue;
    if (doc.label_name(n) == "e0") ++e0;
    if (doc.label_name(n) == "e1") ++e1;
  }
  EXPECT_EQ(e0, 5u);
  EXPECT_EQ(e1, 25u);
  // approx_elements counts entities + attributes.
  EXPECT_EQ(data.approx_elements, 1u + 5 + 25 + (5 + 25) * 2);
  EXPECT_EQ(data.planted_values.size(), 4u);  // 2 levels x 2 attrs
}

TEST(RandomXmlTest, PlantedValueIsMostFrequent) {
  RandomXmlOptions options;
  options.levels = 1;
  options.entities_per_parent = 300;
  options.attributes_per_entity = 1;
  options.domain_size = 10;
  options.zipf_skew = 1.3;
  RandomXmlData data = GenerateRandomXml(options);
  auto db = XmlDatabase::Load(data.xml);
  ASSERT_TRUE(db.ok());
  auto counts = CountValues(db->index(), db->index().root());
  const auto& [attr, planted] = data.planted_values[0];
  size_t planted_count = counts[attr][planted];
  for (const auto& [value, count] : counts[attr]) {
    EXPECT_LE(count, planted_count) << value;
  }
}

TEST(RandomXmlTest, EntitiesClassifiedViaDtd) {
  RandomXmlData data = GenerateRandomXml(RandomXmlOptions{});
  auto db = XmlDatabase::Load(data.xml);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(
      db->classification().IsEntityLabel(db->index().labels().Find("e0")));
  EXPECT_TRUE(
      db->classification().IsEntityLabel(db->index().labels().Find("e1")));
}

TEST(RandomXmlTest, Deterministic) {
  RandomXmlOptions options;
  options.seed = 5;
  EXPECT_EQ(GenerateRandomXml(options).xml, GenerateRandomXml(options).xml);
  RandomXmlOptions other = options;
  other.seed = 6;
  EXPECT_NE(GenerateRandomXml(options).xml, GenerateRandomXml(other).xml);
}

TEST(WorkloadTest, QueriesAreSatisfiable) {
  auto db = XmlDatabase::Load(GenerateStoresXml());
  ASSERT_TRUE(db.ok());
  WorkloadOptions options;
  options.num_queries = 10;
  options.keywords_per_query = 2;
  auto workload = GenerateWorkload(*db, options);
  ASSERT_EQ(workload.size(), 10u);
  for (const Query& q : workload) {
    ASSERT_EQ(q.keywords.size(), 2u);
    for (const std::string& kw : q.keywords) {
      EXPECT_NE(db->inverted().Find(kw), nullptr) << kw;
    }
  }
}

TEST(WorkloadTest, DeterministicForSeed) {
  auto db = XmlDatabase::Load(GenerateStoresXml());
  ASSERT_TRUE(db.ok());
  WorkloadOptions options;
  auto a = GenerateWorkload(*db, options);
  auto b = GenerateWorkload(*db, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].keywords, b[i].keywords);
  }
}

TEST(AuctionDatasetTest, StructureAndClassification) {
  AuctionDatasetOptions options;
  options.num_items = 20;
  options.num_people = 10;
  options.num_open_auctions = 15;
  auto db = XmlDatabase::Load(GenerateAuctionXml(options));
  ASSERT_TRUE(db.ok()) << db.status();
  const auto& doc = db->index();
  size_t items = 0, people = 0, auctions = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(doc.num_nodes()); ++n) {
    if (!doc.is_element(n)) continue;
    const std::string& tag = doc.label_name(n);
    if (tag == "item") ++items;
    if (tag == "person") ++people;
    if (tag == "open_auction") ++auctions;
  }
  EXPECT_EQ(items, 20u);
  EXPECT_EQ(people, 10u);
  EXPECT_EQ(auctions, 15u);
  // DTD-driven classification: item/person/open_auction/bidder/region are
  // entities; name/category/city/amount are attributes.
  for (const char* entity : {"item", "person", "open_auction", "bidder",
                             "region"}) {
    LabelId label = doc.labels().Find(entity);
    ASSERT_NE(label, kInvalidLabel) << entity;
    EXPECT_TRUE(db->classification().IsEntityLabel(label)) << entity;
  }
  // Items and people get name-like keys.
  LabelId item = doc.labels().Find("item");
  ASSERT_TRUE(db->keys().KeyAttributeOf(item).has_value());
  EXPECT_EQ(doc.labels().Name(*db->keys().KeyAttributeOf(item)), "name");
}

TEST(AuctionDatasetTest, SearchAndSnippetEndToEnd) {
  auto db = XmlDatabase::Load(GenerateAuctionXml());
  ASSERT_TRUE(db.ok());
  XSeekEngine engine;
  Query query = Query::Parse("antiques item");
  auto results = engine.Search(*db, query);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  SnippetGenerator generator(&*db);
  SnippetOptions snippet_options;
  snippet_options.size_bound = 8;
  for (const QueryResult& r : *results) {
    auto snippet = generator.Generate(query, r, snippet_options);
    ASSERT_TRUE(snippet.ok());
    EXPECT_LE(snippet->edges(), 8u);
  }
}

TEST(AuctionDatasetTest, Deterministic) {
  EXPECT_EQ(GenerateAuctionXml(), GenerateAuctionXml());
  AuctionDatasetOptions other;
  other.seed = 22;
  EXPECT_NE(GenerateAuctionXml(), GenerateAuctionXml(other));
}

TEST(WorkloadTest, FrequencyBiasShiftsSelectivity) {
  auto db = XmlDatabase::Load(GenerateMoviesXml());
  ASSERT_TRUE(db.ok());
  WorkloadOptions rare;
  rare.frequency_bias = 0.0;
  rare.num_queries = 30;
  WorkloadOptions frequent = rare;
  frequent.frequency_bias = 1.0;
  auto sum_freq = [&](const std::vector<Query>& queries) {
    size_t total = 0;
    for (const Query& q : queries) {
      for (const auto& kw : q.keywords) {
        total += db->inverted().Find(kw)->size();
      }
    }
    return total;
  };
  EXPECT_LT(sum_freq(GenerateWorkload(*db, rare)),
            sum_freq(GenerateWorkload(*db, frequent)));
}

}  // namespace
}  // namespace extract
