#include "render/html_renderer.h"

#include <gtest/gtest.h>

#include "datagen/stores_dataset.h"
#include "snippet/pipeline.h"

namespace extract {
namespace {

struct Ctx {
  XmlDatabase db;
  Query query;
  std::vector<Snippet> snippets;
};

Ctx RunQuery(std::string xml, const std::string& query_text, size_t bound) {
  auto db = XmlDatabase::Load(std::move(xml));
  EXPECT_TRUE(db.ok()) << db.status();
  Query query = Query::Parse(query_text);
  XSeekEngine engine;
  auto results = engine.Search(*db, query);
  EXPECT_TRUE(results.ok()) << results.status();
  SnippetGenerator generator(&*db);
  SnippetOptions options;
  options.size_bound = bound;
  auto snippets = generator.GenerateAll(query, *results, options);
  EXPECT_TRUE(snippets.ok());
  return Ctx{std::move(*db), std::move(query), std::move(*snippets)};
}

TEST(EscapeHtmlTest, EscapesSpecials) {
  EXPECT_EQ(EscapeHtml("a < b & \"c\" > d"),
            "a &lt; b &amp; &quot;c&quot; &gt; d");
  EXPECT_EQ(EscapeHtml("plain"), "plain");
}

TEST(RenderSnippetHtmlTest, NestedListWithValues) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas", 8);
  ASSERT_FALSE(ctx.snippets.empty());
  std::string html =
      RenderSnippetHtml(ctx.snippets[0], ctx.query, HtmlRenderOptions{});
  EXPECT_NE(html.find("<ul class=\"snippet\">"), std::string::npos);
  EXPECT_NE(html.find("Levis"), std::string::npos);
  // tag: value inline style.
  EXPECT_NE(html.find("<span class=\"tag\">name</span>: "
                      "<span class=\"value\">Levis</span>"),
            std::string::npos);
}

TEST(RenderSnippetHtmlTest, HighlightsKeywords) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas", 8);
  std::string html =
      RenderSnippetHtml(ctx.snippets[0], ctx.query, HtmlRenderOptions{});
  // "store" (tag) and "Texas" (value) are keywords -> bolded.
  EXPECT_NE(html.find("<b>store</b>"), std::string::npos);
  EXPECT_NE(html.find("<b>Texas</b>"), std::string::npos);
}

TEST(RenderSnippetHtmlTest, HighlightingCanBeDisabled) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas", 8);
  HtmlRenderOptions options;
  options.highlight_keywords = false;
  std::string html = RenderSnippetHtml(ctx.snippets[0], ctx.query, options);
  EXPECT_EQ(html.find("<b>"), std::string::npos);
}

TEST(RenderSnippetHtmlTest, EmptySnippet) {
  Snippet empty;
  std::string html = RenderSnippetHtml(empty, Query{}, HtmlRenderOptions{});
  EXPECT_NE(html.find("empty"), std::string::npos);
}

TEST(RenderSnippetHtmlTest, ValuesAreHtmlEscaped) {
  auto db = XmlDatabase::Load("<db><i><t>a &lt; b</t></i><i><t>c</t></i></db>");
  ASSERT_TRUE(db.ok());
  Query query = Query::Parse("a");
  XSeekEngine engine;
  auto results = engine.Search(*db, query);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  SnippetGenerator generator(&*db);
  SnippetOptions options;
  options.size_bound = 6;
  auto snippet = generator.Generate(query, results->front(), options);
  ASSERT_TRUE(snippet.ok());
  std::string html = RenderSnippetHtml(*snippet, query, HtmlRenderOptions{});
  EXPECT_EQ(html.find("a < b"), std::string::npos);
  EXPECT_NE(html.find("&lt;"), std::string::npos);
}

TEST(RenderResultsPageTest, FullPageStructure) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas", 8);
  std::string html =
      RenderResultsPageHtml(ctx.query, ctx.snippets, HtmlRenderOptions{});
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("store texas"), std::string::npos);
  // Keys as headings (the §2.2 title analogy).
  EXPECT_NE(html.find("<h2>Levis</h2>"), std::string::npos);
  EXPECT_NE(html.find("<h2>ESprit</h2>"), std::string::npos);
  // Per-result anchors and links.
  EXPECT_NE(html.find("id=\"result-1\""), std::string::npos);
  EXPECT_NE(html.find("href=\"#result-2\""), std::string::npos);
}

TEST(RenderResultsPageTest, FallbackHeadingWithoutKey) {
  Ctx ctx = RunQuery("<a><b>hello</b></a>", "hello", 4);
  std::string html =
      RenderResultsPageHtml(ctx.query, ctx.snippets, HtmlRenderOptions{});
  EXPECT_NE(html.find("<h2>Result 1</h2>"), std::string::npos);
}

}  // namespace
}  // namespace extract
