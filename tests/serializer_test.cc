#include "xml/serializer.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "xml/parser.h"

namespace extract {
namespace {

TEST(SerializerTest, CompactRoundTripSimple) {
  const std::string xml = "<a x=\"1\"><b>t</b><c/></a>";
  auto doc = ParseXml(xml);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(WriteXml(*(*doc)->root()), xml);
}

TEST(SerializerTest, EscapesTextAndAttributes) {
  auto root = XmlNode::MakeElement("a");
  root->AddAttribute("q", "a \"b\" <c>");
  root->AppendChild(XmlNode::MakeText("1 < 2 & 3"));
  EXPECT_EQ(WriteXml(*root),
            "<a q=\"a &quot;b&quot; &lt;c&gt;\">1 &lt; 2 &amp; 3</a>");
}

TEST(SerializerTest, EmptyElementSelfCloses) {
  EXPECT_EQ(WriteXml(*XmlNode::MakeElement("br")), "<br/>");
}

TEST(SerializerTest, PrettyPrinting) {
  auto doc = ParseXml("<a><b>t</b><c/></a>");
  ASSERT_TRUE(doc.ok());
  XmlWriteOptions options;
  options.pretty = true;
  EXPECT_EQ(WriteXml(*(*doc)->root(), options),
            "<a>\n  <b>t</b>\n  <c/>\n</a>");
}

TEST(SerializerTest, DocumentWithDeclaration) {
  auto doc = ParseXml("<a/>");
  ASSERT_TRUE(doc.ok());
  XmlWriteOptions options;
  options.declaration = true;
  EXPECT_EQ(WriteXmlDocument(**doc, options),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
}

TEST(SerializerTest, CDataPreserved) {
  auto doc = ParseXml("<a><![CDATA[<x>&]]></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(WriteXml(*(*doc)->root()), "<a><![CDATA[<x>&]]></a>");
}

TEST(SerializerTest, CommentAndPiPreserved) {
  XmlParseOptions options;
  options.keep_comments = true;
  options.keep_processing_instructions = true;
  auto doc = ParseXml("<a><!--c--><?pi d?></a>", options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(WriteXml(*(*doc)->root()), "<a><!--c--><?pi d?></a>");
}

TEST(RenderXmlTreeTest, InlinesSoleTextChild) {
  auto frag = ParseXmlFragment("<store><name>Levis</name><m><c/></m></store>");
  ASSERT_TRUE(frag.ok());
  std::string out = RenderXmlTree(**frag);
  EXPECT_EQ(out,
            "store\n"
            "├── name \"Levis\"\n"
            "└── m\n"
            "    └── c\n");
}

// ------------------------- property: parse(serialize(t)) == t (TEST_P) ----

// Generates a random DOM tree with text, attributes and nesting.
std::unique_ptr<XmlNode> RandomTree(Rng* rng, int depth) {
  auto node = XmlNode::MakeElement("n" + std::to_string(rng->Uniform(5)));
  size_t num_attrs = rng->Uniform(3);
  for (size_t i = 0; i < num_attrs; ++i) {
    node->AddAttribute("a" + std::to_string(i),
                       "v<&\"" + std::to_string(rng->Uniform(100)));
  }
  size_t num_children = depth > 0 ? rng->Uniform(4) : 0;
  bool last_was_text = false;
  for (size_t i = 0; i < num_children; ++i) {
    if (rng->Bernoulli(0.3) && !last_was_text) {
      // Adjacent text nodes would merge on reparse; emit only isolated ones.
      node->AppendChild(
          XmlNode::MakeText("text & <stuff> " + std::to_string(i)));
      last_was_text = true;
    } else {
      node->AppendChild(RandomTree(rng, depth - 1));
      last_was_text = false;
    }
  }
  if (num_children == 0 && rng->Bernoulli(0.5)) {
    node->AppendChild(XmlNode::MakeText("leaf " + std::to_string(rng->Uniform(9))));
  }
  return node;
}

class SerializerRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializerRoundTrip, ParseSerializeParseIsIdentity) {
  Rng rng(GetParam());
  auto tree = RandomTree(&rng, 4);
  std::string xml = WriteXml(*tree);
  auto reparsed = ParseXmlFragment(xml);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << xml;
  EXPECT_TRUE((*reparsed)->StructurallyEquals(*tree)) << xml;
  // Serialization is a fixpoint after one round trip.
  EXPECT_EQ(WriteXml(**reparsed), xml);
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, SerializerRoundTrip,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace extract
