#include "snippet/return_entity.h"

#include <gtest/gtest.h>

#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"

namespace extract {
namespace {

struct Ctx {
  XmlDatabase db;
  std::vector<QueryResult> results;
  Query query;
};

Ctx RunQuery(std::string xml, const std::string& query_text) {
  auto db = XmlDatabase::Load(xml);
  EXPECT_TRUE(db.ok()) << db.status();
  Query query = Query::Parse(query_text);
  XSeekEngine engine;
  auto results = engine.Search(*db, query);
  EXPECT_TRUE(results.ok()) << results.status();
  return Ctx{std::move(*db), std::move(*results), std::move(query)};
}

TEST(ReturnEntityTest, PaperExampleNameMatch) {
  // "Texas apparel retailer": entity retailer's name matches keyword
  // "retailer" -> return entity, evidence kNameMatch (paper §2.2).
  Ctx ctx = RunQuery(GenerateRetailerXml(), "Texas apparel retailer");
  ASSERT_EQ(ctx.results.size(), 1u);
  ReturnEntityInfo info =
      IdentifyReturnEntity(ctx.db.index(), ctx.db.classification(), ctx.query,
                           ctx.results[0].root);
  ASSERT_TRUE(info.found());
  EXPECT_EQ(ctx.db.index().labels().Name(info.label), "retailer");
  EXPECT_EQ(info.evidence, ReturnEntityEvidence::kNameMatch);
  EXPECT_EQ(info.instances.size(), 1u);
}

TEST(ReturnEntityTest, StoreTexasDemoQuery) {
  // "store texas" (Figure 5): store's name matches "store".
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  ASSERT_GE(ctx.results.size(), 2u);
  for (const QueryResult& r : ctx.results) {
    ReturnEntityInfo info = IdentifyReturnEntity(
        ctx.db.index(), ctx.db.classification(), ctx.query, r.root);
    ASSERT_TRUE(info.found());
    EXPECT_EQ(ctx.db.index().labels().Name(info.label), "store");
    EXPECT_EQ(info.evidence, ReturnEntityEvidence::kNameMatch);
  }
}

TEST(ReturnEntityTest, AttributeNameMatch) {
  // Keyword matches the attribute name "director", not any entity name:
  // movie is the return entity by attribute evidence.
  Ctx ctx = RunQuery(R"(<db>
    <movie><title>T1</title><director>Jane</director></movie>
    <movie><title>T2</title><director>John</director></movie>
  </db>)",
                "director jane");
  ASSERT_EQ(ctx.results.size(), 1u);
  ReturnEntityInfo info = IdentifyReturnEntity(
      ctx.db.index(), ctx.db.classification(), ctx.query, ctx.results[0].root);
  ASSERT_TRUE(info.found());
  EXPECT_EQ(ctx.db.index().labels().Name(info.label), "movie");
  EXPECT_EQ(info.evidence, ReturnEntityEvidence::kAttributeMatch);
}

TEST(ReturnEntityTest, DefaultHighestEntity) {
  // No entity/attribute name matches the keywords. "Houston" and "Austin"
  // live in different stores, so the result is the whole retailer; the
  // default return entity is the highest entity in it — retailer, not
  // store/clothes.
  Ctx ctx = RunQuery(GenerateRetailerXml(), "Houston Austin");
  ASSERT_GE(ctx.results.size(), 1u);
  EXPECT_EQ(ctx.db.index().label_name(ctx.results[0].root), "retailer");
  ReturnEntityInfo info = IdentifyReturnEntity(
      ctx.db.index(), ctx.db.classification(), ctx.query, ctx.results[0].root);
  ASSERT_TRUE(info.found());
  EXPECT_EQ(info.evidence, ReturnEntityEvidence::kDefaultHighest);
  EXPECT_EQ(ctx.db.index().labels().Name(info.label), "retailer");
}

TEST(ReturnEntityTest, DefaultHighestWithinStoreResult) {
  // "Houston casual" co-occurs inside single stores: each result is a
  // store subtree, and the highest entity there is the store itself.
  Ctx ctx = RunQuery(GenerateRetailerXml(), "Houston casual");
  ASSERT_GE(ctx.results.size(), 1u);
  EXPECT_EQ(ctx.db.index().label_name(ctx.results[0].root), "store");
  ReturnEntityInfo info = IdentifyReturnEntity(
      ctx.db.index(), ctx.db.classification(), ctx.query, ctx.results[0].root);
  ASSERT_TRUE(info.found());
  EXPECT_EQ(info.evidence, ReturnEntityEvidence::kDefaultHighest);
  EXPECT_EQ(ctx.db.index().labels().Name(info.label), "store");
}

TEST(ReturnEntityTest, NameMatchPreferredOverAttributeMatch) {
  // "store city": store matches by name; clothes would match nothing;
  // the city attribute belongs to store anyway. Name evidence wins.
  Ctx ctx = RunQuery(GenerateStoresXml(), "store houston");
  ASSERT_GE(ctx.results.size(), 1u);
  ReturnEntityInfo info = IdentifyReturnEntity(
      ctx.db.index(), ctx.db.classification(), ctx.query, ctx.results[0].root);
  EXPECT_EQ(info.evidence, ReturnEntityEvidence::kNameMatch);
  EXPECT_EQ(ctx.db.index().labels().Name(info.label), "store");
}

TEST(ReturnEntityTest, NoEntitiesYieldsNone) {
  Ctx ctx = RunQuery("<a><b>hello</b></a>", "hello");
  ASSERT_EQ(ctx.results.size(), 1u);
  ReturnEntityInfo info = IdentifyReturnEntity(
      ctx.db.index(), ctx.db.classification(), ctx.query, ctx.results[0].root);
  EXPECT_FALSE(info.found());
  EXPECT_EQ(info.evidence, ReturnEntityEvidence::kNone);
}

TEST(ReturnEntityTest, InstancesAreAllOccurrencesInResult) {
  // Query matching the nested entity name: all clothes instances listed.
  Ctx ctx = RunQuery(GenerateStoresXml(), "clothes texas");
  ASSERT_GE(ctx.results.size(), 1u);
  ReturnEntityInfo info = IdentifyReturnEntity(
      ctx.db.index(), ctx.db.classification(), ctx.query, ctx.results[0].root);
  ASSERT_TRUE(info.found());
  EXPECT_EQ(ctx.db.index().labels().Name(info.label), "clothes");
  EXPECT_GT(info.instances.size(), 5u);  // Levis carries 17 items
  for (NodeId n : info.instances) {
    EXPECT_TRUE(ctx.db.index().IsAncestorOrSelf(ctx.results[0].root, n));
  }
}

TEST(ReturnEntityTest, TieOnDepthBreaksTowardDocumentOrder) {
  // Keywords spread across branches force the result root to <db>; alpha
  // and beta are entities at equal depth, neither matching a keyword, so
  // the default picks the one first in document order.
  Ctx ctx = RunQuery(R"(<db>
    <alpha><x>k1</x></alpha><alpha><x>k1</x></alpha>
    <beta><y>k2</y></beta><beta><y>k2</y></beta>
  </db>)",
                "k1 k2");
  ASSERT_EQ(ctx.results.size(), 1u);
  EXPECT_EQ(ctx.db.index().label_name(ctx.results[0].root), "db");
  ReturnEntityInfo info = IdentifyReturnEntity(
      ctx.db.index(), ctx.db.classification(), ctx.query, ctx.results[0].root);
  ASSERT_TRUE(info.found());
  EXPECT_EQ(info.evidence, ReturnEntityEvidence::kDefaultHighest);
  EXPECT_EQ(ctx.db.index().labels().Name(info.label), "alpha");
}

}  // namespace
}  // namespace extract
