#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <vector>

namespace extract {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 100);
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, WaitCanBeReusedAcrossRounds) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) pool.Submit([&count] { count.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenWhenAskedForZero) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    const size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    ParallelFor(n, threads, [&](size_t i) { visits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelForTest, EmptyAndSingleElementRanges) {
  int calls = 0;
  ParallelFor(0, 8, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, 8, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, SlotWritesMatchSequential) {
  const size_t n = 500;
  std::vector<size_t> sequential(n), parallel(n);
  ParallelFor(n, 1, [&](size_t i) { sequential[i] = i * i; });
  ParallelFor(n, 8, [&](size_t i) { parallel[i] = i * i; });
  EXPECT_EQ(sequential, parallel);
}

TEST(ParallelForTest, NestedCallsCompleteEveryIndex) {
  const size_t outer = 8, inner = 16;
  std::vector<std::atomic<int>> counts(outer * inner);
  ParallelFor(outer, 4, [&](size_t o) {
    ParallelFor(inner, 4, [&](size_t i) {
      counts[o * inner + i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

// Regression: tasks submitted straight to the shared pool that themselves
// call ParallelFor must not deadlock the pool (every worker waiting on
// helper tasks stuck behind the other waiting workers). The fix routes any
// pool-run caller to the inline loop; without it this test hangs.
TEST(ParallelForTest, CallableFromTasksOnTheSharedPool) {
  ThreadPool& pool = SharedThreadPool();
  const size_t tasks = pool.num_threads() + 2;  // saturate every worker
  std::atomic<size_t> total{0};
  for (size_t t = 0; t < tasks; ++t) {
    pool.Submit([&] {
      ParallelFor(50, 0, [&](size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  pool.Wait();
  EXPECT_EQ(total.load(), tasks * 50);
}

// The EXTRACT_POOL_THREADS parsing contract (the pool itself is created
// once per process, so the parser is what can be pinned here): digits-only,
// clamped, and "no override" on anything else.
TEST(ThreadPoolTest, ParsePoolThreadsOverride) {
  EXPECT_EQ(ParsePoolThreadsOverride(nullptr), 0u);
  EXPECT_EQ(ParsePoolThreadsOverride(""), 0u);
  EXPECT_EQ(ParsePoolThreadsOverride("0"), 0u);
  EXPECT_EQ(ParsePoolThreadsOverride("1"), 1u);
  EXPECT_EQ(ParsePoolThreadsOverride("8"), 8u);
  EXPECT_EQ(ParsePoolThreadsOverride("512"), 512u);
  EXPECT_EQ(ParsePoolThreadsOverride("4096"), 512u);  // clamped
  EXPECT_EQ(ParsePoolThreadsOverride("99999999999999999999"), 512u);
  EXPECT_EQ(ParsePoolThreadsOverride("-2"), 0u);
  EXPECT_EQ(ParsePoolThreadsOverride("4x"), 0u);
  EXPECT_EQ(ParsePoolThreadsOverride(" 4"), 0u);
  EXPECT_EQ(ParsePoolThreadsOverride("auto"), 0u);
}

TEST(TaskGroupTest, RunsEverySubmittedTaskAndWaits) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    group.Submit([&count] { count.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 50);
  EXPECT_EQ(group.outstanding(), 0u);
  EXPECT_FALSE(group.cancelled());
}

TEST(TaskGroupTest, CancelSkipsUnstartedTasks) {
  ThreadPool pool(1);  // one worker: everything behind the blocker queues
  TaskGroup group(&pool);
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  group.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    group.Submit([&count] { count.fetch_add(1); });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  group.Cancel();
  EXPECT_TRUE(group.cancelled());
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  group.Wait();
  // The blocker had started and ran to completion; the queued tasks were
  // skipped but still count as finished.
  EXPECT_EQ(count.load(), 0);
  EXPECT_EQ(group.outstanding(), 0u);
}

TEST(TaskGroupTest, NotifyOnDrainFiresAfterLastTask) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> count{0};
  std::atomic<bool> drained{false};
  for (int i = 0; i < 20; ++i) {
    group.Submit([&count] { count.fetch_add(1); });
  }
  group.NotifyOnDrain([&] {
    EXPECT_EQ(count.load(), 20);
    drained.store(true);
  });
  group.Wait();
  // Wait() returns when outstanding hits zero; the drain callback runs on
  // the finishing worker at that same transition (or already ran, when the
  // group was idle at registration).
  pool.Wait();
  EXPECT_TRUE(drained.load());
}

TEST(TaskGroupTest, NotifyOnDrainFiresImmediatelyWhenIdle) {
  ThreadPool pool(1);
  TaskGroup group(&pool);
  bool drained = false;
  group.NotifyOnDrain([&drained] { drained = true; });
  EXPECT_TRUE(drained);
}

TEST(TaskGroupTest, DestructorWaitsForStartedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  {
    TaskGroup group(&pool);
    for (int i = 0; i < 8; ++i) {
      group.Submit([&count] { count.fetch_add(1); });
    }
    group.Wait();
  }  // destructor: cancel (no-op, drained) + wait must not hang
  EXPECT_EQ(count.load(), 8);
}

TEST(InParallelRegionTest, TrueOnPoolWorkersAndInsideParallelFor) {
  EXPECT_FALSE(InParallelRegion());
  std::atomic<int> checked{0};
  ParallelFor(8, 2, [&checked](size_t) {
    if (InParallelRegion()) checked.fetch_add(1);
  });
  EXPECT_EQ(checked.load(), 8);
  EXPECT_FALSE(InParallelRegion());
  std::atomic<bool> on_worker{false};
  ThreadPool& pool = SharedThreadPool();
  pool.Submit([&on_worker] { on_worker.store(InParallelRegion()); });
  pool.Wait();
  EXPECT_TRUE(on_worker.load());
}

TEST(ThreadPoolTest, ConfiguredThreadsIsStableAndPositive) {
  const size_t first = ThreadPool::ConfiguredThreads();
  EXPECT_GE(first, 1u);
  // Read once per process: later reads agree even if the env changes now.
  setenv("EXTRACT_POOL_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::ConfiguredThreads(), first);
  unsetenv("EXTRACT_POOL_THREADS");
}

}  // namespace
}  // namespace extract
