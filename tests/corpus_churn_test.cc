// Live mutable corpus: epoch-pinned snapshot swapping. Covers the
// EpochDomain primitive, the precise mutation statuses, pinned-view
// stability across removals, and — the teeth — a TSan torture mix of
// concurrent readers, writers, cancellation and cache invalidation where
// every non-cancelled query must be byte-identical to a quiesced oracle
// run against the exact view it pinned.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/epoch.h"
#include "datagen/movies_dataset.h"
#include "datagen/retailer_dataset.h"
#include "datagen/stores_dataset.h"
#include "search/corpus.h"
#include "snippet/snippet_service.h"
#include "xml/serializer.h"

namespace extract {
namespace {

// ---------------------------------------------------------------- EpochDomain

TEST(EpochDomainTest, PublishRetireReclaim) {
  EpochDomain<int> domain;
  EpochDomain<int>::Pin pin = domain.Acquire();
  EXPECT_EQ(*pin, 0);
  EXPECT_EQ(pin.epoch(), 0u);

  EXPECT_EQ(domain.Publish(41), 1u);
  EXPECT_EQ(domain.Publish(42), 2u);

  // The pinned reader still sees epoch 0; new pins see epoch 2.
  EXPECT_EQ(*pin, 0);
  EpochDomain<int>::Pin fresh = domain.Acquire();
  EXPECT_EQ(*fresh, 42);
  EXPECT_EQ(fresh.epoch(), 2u);

  EpochStats stats = domain.Stats();
  EXPECT_EQ(stats.epoch, 2u);
  EXPECT_EQ(stats.published, 2u);
  EXPECT_EQ(stats.pinned_readers, 2u);
  // Epoch 1 had no pin, so it reclaimed inside Publish; epoch 0 is held.
  EXPECT_EQ(stats.retired_live, 1u);
  EXPECT_EQ(stats.reclaimed, 1u);

  pin = EpochDomain<int>::Pin();  // drop the epoch-0 hold
  stats = domain.Stats();
  EXPECT_EQ(stats.pinned_readers, 1u);
  EXPECT_EQ(stats.retired_live, 0u);
  EXPECT_EQ(stats.reclaimed, 2u);
}

TEST(EpochDomainTest, PinCopyAndMoveSemantics) {
  EpochDomain<int> domain;
  domain.Publish(7);

  EpochDomain<int>::Pin a = domain.Acquire();
  EXPECT_EQ(domain.Stats().pinned_readers, 1u);

  EpochDomain<int>::Pin b = a;  // copy extends the pin
  EXPECT_EQ(domain.Stats().pinned_readers, 2u);
  EXPECT_EQ(*b, 7);

  EpochDomain<int>::Pin c = std::move(a);  // move transfers it
  EXPECT_EQ(domain.Stats().pinned_readers, 2u);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_TRUE(c);

  b = EpochDomain<int>::Pin();
  c = EpochDomain<int>::Pin();
  EXPECT_EQ(domain.Stats().pinned_readers, 0u);
}

TEST(EpochDomainTest, PinOutlivesDomain) {
  EpochDomain<std::string>::Pin pin;
  {
    EpochDomain<std::string> domain;
    domain.Publish("alive");
    pin = domain.Acquire();
  }
  EXPECT_EQ(*pin, "alive");  // the pin alone keeps the snapshot alive
}

// ------------------------------------------------------ mutation statuses

TEST(CorpusChurnTest, PreciseMutationStatuses) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("a", "<x>one</x>").ok());
  EXPECT_EQ(corpus.AddDocument("a", "<y>two</y>").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(corpus.RemoveDocument("missing").code(), StatusCode::kNotFound);

  corpus.BeginShutdown();
  EXPECT_EQ(corpus.AddDocument("b", "<z>three</z>").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(corpus.RemoveDocument("a").code(),
            StatusCode::kFailedPrecondition);

  // Serving continues against the last published view after shutdown.
  XSeekEngine engine;
  auto hits = corpus.SearchAll(Query::Parse("one"), engine);
  ASSERT_TRUE(hits.ok()) << hits.status();
  EXPECT_EQ(hits->size(), 1u);
  EXPECT_EQ(corpus.size(), 1u);
}

// ------------------------------------------------------ pinned-view reads

/// Byte-level fingerprint of a snippet: every observable field.
std::string Fingerprint(const Snippet& s) {
  std::string out;
  out += std::to_string(s.result_root);
  out += '|';
  for (NodeId n : s.nodes) {
    out += std::to_string(n);
    out += ',';
  }
  out += '|';
  for (bool c : s.covered) out += c ? '1' : '0';
  out += '|';
  out += s.key.value;
  out += '|';
  out += s.ilist.ToString();
  out += '|';
  out += s.tree ? WriteXml(*s.tree) : "(no tree)";
  return out;
}

std::string FingerprintHit(const CorpusResult& hit) {
  return hit.document + "#" + std::to_string(hit.result.root) + "@" +
         std::to_string(hit.score);
}

TEST(CorpusChurnTest, PinnedViewServesIdenticallyAfterRemoval) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
  ASSERT_TRUE(corpus.AddDocument("retailer", GenerateRetailerXml()).ok());

  Query query = Query::Parse("texas");
  XSeekEngine engine;
  SnippetOptions options;
  options.size_bound = 9;

  CorpusPin pin = corpus.PinView();
  auto before = corpus.SearchAll(query, engine, RankingOptions{},
                                 CorpusServingOptions{}, pin);
  ASSERT_TRUE(before.ok()) << before.status();
  ASSERT_FALSE(before->empty());
  auto before_snips =
      corpus.GenerateSnippets(query, *before, options, BatchOptions{}, pin);
  ASSERT_TRUE(before_snips.ok()) << before_snips.status();

  ASSERT_TRUE(corpus.RemoveDocument("stores").ok());
  EXPECT_EQ(corpus.EpochStatsSnapshot().retired_live, 1u)
      << "the held pin must keep the retired view alive";

  // The pinned view still serves the removed document, byte-identically.
  auto after = corpus.SearchAll(query, engine, RankingOptions{},
                                CorpusServingOptions{}, pin);
  ASSERT_TRUE(after.ok()) << after.status();
  ASSERT_EQ(after->size(), before->size());
  for (size_t i = 0; i < after->size(); ++i) {
    EXPECT_EQ(FingerprintHit((*after)[i]), FingerprintHit((*before)[i]));
  }
  auto after_snips =
      corpus.GenerateSnippets(query, *after, options, BatchOptions{}, pin);
  ASSERT_TRUE(after_snips.ok()) << after_snips.status();
  for (size_t i = 0; i < after_snips->size(); ++i) {
    EXPECT_EQ(Fingerprint((*after_snips)[i]), Fingerprint((*before_snips)[i]));
  }

  // The current view no longer has the document.
  EXPECT_EQ(corpus.Find("stores"), nullptr);

  pin = CorpusPin();  // last reader drains: the retired view reclaims
  EpochStats stats = corpus.EpochStatsSnapshot();
  EXPECT_EQ(stats.retired_live, 0u);
  EXPECT_GE(stats.reclaimed, 1u);
}

TEST(CorpusChurnTest, AddIsVisibleOnlyToNewPins) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());

  CorpusPin old_pin = corpus.PinView();
  ASSERT_TRUE(corpus.AddDocument("retailer", GenerateRetailerXml()).ok());

  EXPECT_EQ(old_pin->documents.size(), 1u);
  EXPECT_EQ(corpus.PinView()->documents.size(), 2u);
  EXPECT_EQ(corpus.size(), 2u);

  Query query = Query::Parse("texas");
  XSeekEngine engine;
  auto old_hits = corpus.SearchAll(query, engine, RankingOptions{},
                                   CorpusServingOptions{}, old_pin);
  ASSERT_TRUE(old_hits.ok());
  for (const CorpusResult& hit : *old_hits) {
    EXPECT_EQ(hit.document, "stores") << "old pin must not see the add";
  }
  auto new_hits = corpus.SearchAll(query, engine);
  ASSERT_TRUE(new_hits.ok());
  bool saw_retailer = false;
  for (const CorpusResult& hit : *new_hits) {
    saw_retailer = saw_retailer || hit.document == "retailer";
  }
  EXPECT_TRUE(saw_retailer);
}

// A lazily-produced stream (num_threads = 1: slots compute as they are
// pulled) opened before a removal must drain byte-identically after it —
// the session's pin keeps the database alive through the drain.
TEST(CorpusChurnTest, InFlightStreamSurvivesRemoval) {
  XmlCorpus corpus;
  ASSERT_TRUE(corpus.AddDocument("stores", GenerateStoresXml()).ok());
  XmlCorpus reference;
  ASSERT_TRUE(reference.AddDocument("stores", GenerateStoresXml()).ok());

  Query query = Query::Parse("store texas");
  XSeekEngine engine;
  SnippetOptions options;
  options.size_bound = 10;
  StreamOptions lazy;
  lazy.num_threads = 1;

  auto served = corpus.ServeQuery(query, engine, RankingOptions{},
                                  CorpusServingOptions{}, options, lazy);
  ASSERT_TRUE(served.ok()) << served.status();
  ASSERT_FALSE(served->page().empty());

  // Remove (and replace) the document while the stream is open and no
  // snippet has been computed yet.
  ASSERT_TRUE(corpus.RemoveDocument("stores").ok());
  ASSERT_TRUE(corpus.AddDocument("stores", "<other>content</other>").ok());

  std::vector<std::pair<size_t, std::string>> got;
  while (auto event = served->stream().Next()) {
    ASSERT_TRUE(event->snippet.ok()) << event->snippet.status();
    got.emplace_back(event->slot, Fingerprint(*event->snippet));
  }
  ASSERT_EQ(got.size(), served->page().size());

  auto expected = reference.GenerateSnippets(
      query, served->page(), options, BatchOptions{});
  ASSERT_TRUE(expected.ok()) << expected.status();
  for (const auto& [slot, fingerprint] : got) {
    EXPECT_EQ(fingerprint, Fingerprint((*expected)[slot]));
  }
}

// ---------------------------------------------------------------- torture

// Concurrent readers (gated top-k, blocking, cancelling) × writers
// (remove + re-add churn over two flapping documents) × snippet-cache
// invalidation. Every non-cancelled query is verified against a
// sequential, uncached oracle evaluated on the exact view the query
// pinned — any torn read, freed database, or stale cache byte fails.
TEST(CorpusChurnTest, TortureReadersWritersCancellation) {
  XmlCorpus corpus;
  corpus.EnableSnippetCache();
  const std::string stores_xml = GenerateStoresXml();
  const std::string retailer_xml = GenerateRetailerXml();
  const std::string movies_xml = GenerateMoviesXml();
  ASSERT_TRUE(corpus.AddDocument("base0", stores_xml).ok());
  ASSERT_TRUE(corpus.AddDocument("base1", retailer_xml).ok());
  ASSERT_TRUE(corpus.AddDocument("churn0", movies_xml).ok());
  ASSERT_TRUE(corpus.AddDocument("churn1", stores_xml).ok());

  const std::vector<std::string> queries = {"texas", "store texas",
                                            "texas clothes", "drama"};

  constexpr int kReaders = 3;
  constexpr int kItersPerReader = 8;
  constexpr int kWriters = 2;
  constexpr int kMutationsPerWriter = 24;

  std::vector<std::string> reader_failures(kReaders);
  std::vector<std::string> writer_failures(kWriters);
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const std::string name = "churn" + std::to_string(w);
      for (int m = 0; m < kMutationsPerWriter; ++m) {
        Status removed = corpus.RemoveDocument(name);
        if (!removed.ok() && removed.code() != StatusCode::kNotFound) {
          writer_failures[w] = "remove: " + removed.ToString();
          return;
        }
        const std::string& xml =
            (m % 2 == 0) ? (w == 0 ? retailer_xml : movies_xml)
                         : (w == 0 ? movies_xml : stores_xml);
        Status added = corpus.AddDocument(name, xml);
        if (!added.ok() && added.code() != StatusCode::kAlreadyExists) {
          writer_failures[w] = "add: " + added.ToString();
          return;
        }
      }
    });
  }

  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      XSeekEngine engine;
      for (int iter = 0; iter < kItersPerReader; ++iter) {
        const Query query =
            Query::Parse(queries[(r + iter) % queries.size()]);
        const bool gated = iter % 3 == 0;
        const bool cancel = iter % 5 == 4;
        SnippetOptions options;
        options.size_bound = 8 + (iter % 3) * 3;
        CorpusServingOptions serving;
        serving.page_size = gated ? 5 : 0;
        StreamOptions stream;
        stream.num_threads = (iter % 2 == 0) ? 2 : 1;

        CorpusPin pin = corpus.PinView();
        auto served = corpus.ServeQuery(query, engine, RankingOptions{},
                                        serving, options, stream, pin);
        if (!served.ok()) {
          reader_failures[r] = "serve: " + served.status().ToString();
          return;
        }
        std::vector<std::pair<size_t, std::string>> got;
        bool cancelled = false;
        while (auto event = served->stream().Next()) {
          if (cancel && !cancelled) {
            served->Cancel();
            cancelled = true;
            continue;
          }
          if (cancelled) continue;  // drain the cancelled tail
          if (!event->snippet.ok()) {
            reader_failures[r] = "slot " + std::to_string(event->slot) +
                                 ": " + event->snippet.status().ToString();
            return;
          }
          got.emplace_back(event->slot, Fingerprint(*event->snippet));
        }
        if (cancelled) continue;  // cancelled runs are not verified

        // Oracle: sequential, uncached, quiesced-equivalent evaluation on
        // the same pinned view (the pin makes it immutable, so "after the
        // fact" IS quiesced).
        CorpusServingOptions sequential;
        sequential.search_threads = 1;
        auto oracle = corpus.SearchAll(query, engine, RankingOptions{},
                                       sequential, pin);
        if (!oracle.ok()) {
          reader_failures[r] = "oracle: " + oracle.status().ToString();
          return;
        }
        const size_t expect_hits =
            gated ? std::min<size_t>(serving.page_size, oracle->size())
                  : oracle->size();
        if (served->page().size() != expect_hits) {
          reader_failures[r] =
              "page size " + std::to_string(served->page().size()) +
              " != oracle " + std::to_string(expect_hits);
          return;
        }
        for (size_t i = 0; i < expect_hits; ++i) {
          if (FingerprintHit(served->page()[i]) !=
              FingerprintHit((*oracle)[i])) {
            reader_failures[r] = "hit " + std::to_string(i) + " diverges: " +
                                 FingerprintHit(served->page()[i]) + " vs " +
                                 FingerprintHit((*oracle)[i]);
            return;
          }
        }
        if (got.size() != expect_hits) {
          reader_failures[r] = "emitted " + std::to_string(got.size()) +
                               " snippets, expected " +
                               std::to_string(expect_hits);
          return;
        }
        for (const auto& [slot, fingerprint] : got) {
          const CorpusResult& hit = served->page()[slot];
          auto doc = pin->documents.find(hit.document);
          if (doc == pin->documents.end()) {
            reader_failures[r] = "hit references a document outside the "
                                 "pinned view: " + hit.document;
            return;
          }
          SnippetService service(doc->second.db.get());
          auto expected = service.Generate(query, hit.result, options);
          if (!expected.ok()) {
            reader_failures[r] = "oracle snippet: " +
                                 expected.status().ToString();
            return;
          }
          if (fingerprint != Fingerprint(*expected)) {
            reader_failures[r] =
                "snippet bytes diverge at slot " + std::to_string(slot) +
                " (document " + hit.document + ")";
            return;
          }
        }
      }
    });
  }

  for (std::thread& t : threads) t.join();
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_TRUE(writer_failures[w].empty())
        << "writer " << w << ": " << writer_failures[w];
  }
  for (int r = 0; r < kReaders; ++r) {
    EXPECT_TRUE(reader_failures[r].empty())
        << "reader " << r << ": " << reader_failures[r];
  }

  // The churn must actually have recycled views, and quiescence drains
  // every pin.
  EpochStats stats = corpus.EpochStatsSnapshot();
  EXPECT_GE(stats.published, 4u + 2u * kMutationsPerWriter);
  EXPECT_EQ(stats.pinned_readers, 0u);
  EXPECT_EQ(stats.retired_live, 0u);
  EXPECT_GE(stats.reclaimed, stats.published - 1);
}

}  // namespace
}  // namespace extract
