#include "index/indexed_document.h"

#include <gtest/gtest.h>

#include <functional>

#include "common/random.h"
#include "xml/parser.h"

namespace extract {
namespace {

IndexedDocument MustBuild(std::string_view xml,
                          IndexedDocumentOptions options = {}) {
  auto doc = ParseXml(xml);
  EXPECT_TRUE(doc.ok()) << doc.status();
  auto idx = IndexedDocument::Build(**doc, options);
  EXPECT_TRUE(idx.ok()) << idx.status();
  return std::move(*idx);
}

TEST(IndexedDocumentTest, PreOrderNumbering) {
  // <a><b>t</b><c/></a> -> 0:a 1:b 2:text 3:c
  IndexedDocument doc = MustBuild("<a><b>t</b><c/></a>");
  ASSERT_EQ(doc.num_nodes(), 4u);
  EXPECT_EQ(doc.root(), 0);
  EXPECT_EQ(doc.label_name(0), "a");
  EXPECT_EQ(doc.label_name(1), "b");
  EXPECT_TRUE(doc.is_text(2));
  EXPECT_EQ(doc.text(2), "t");
  EXPECT_EQ(doc.label_name(3), "c");
  EXPECT_EQ(doc.num_elements(), 3u);
}

TEST(IndexedDocumentTest, ParentsAndDepths) {
  IndexedDocument doc = MustBuild("<a><b>t</b><c/></a>");
  EXPECT_EQ(doc.parent(0), kInvalidNode);
  EXPECT_EQ(doc.parent(1), 0);
  EXPECT_EQ(doc.parent(2), 1);
  EXPECT_EQ(doc.parent(3), 0);
  EXPECT_EQ(doc.depth(0), 0u);
  EXPECT_EQ(doc.depth(2), 2u);
}

TEST(IndexedDocumentTest, SubtreeIntervals) {
  IndexedDocument doc = MustBuild("<a><b>t</b><c/></a>");
  EXPECT_EQ(doc.subtree_end(0), 4);
  EXPECT_EQ(doc.subtree_end(1), 3);
  EXPECT_EQ(doc.subtree_end(2), 3);
  EXPECT_EQ(doc.subtree_end(3), 4);
  EXPECT_EQ(doc.subtree_edges(0), 3u);
  EXPECT_EQ(doc.subtree_edges(1), 1u);
}

TEST(IndexedDocumentTest, AncestorChecks) {
  IndexedDocument doc = MustBuild("<a><b>t</b><c/></a>");
  EXPECT_TRUE(doc.IsAncestor(0, 1));
  EXPECT_TRUE(doc.IsAncestor(0, 2));
  EXPECT_TRUE(doc.IsAncestor(1, 2));
  EXPECT_FALSE(doc.IsAncestor(1, 3));
  EXPECT_FALSE(doc.IsAncestor(1, 1));
  EXPECT_TRUE(doc.IsAncestorOrSelf(1, 1));
}

TEST(IndexedDocumentTest, ChildrenSpans) {
  IndexedDocument doc = MustBuild("<a><b>t</b><c/></a>");
  auto kids = doc.children(0);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0], 1);
  EXPECT_EQ(kids[1], 3);
  EXPECT_EQ(doc.child_elements(0).size(), 2u);
  EXPECT_EQ(doc.children(2).size(), 0u);
}

TEST(IndexedDocumentTest, SoleTextChild) {
  IndexedDocument doc = MustBuild("<a><b>t</b><c/><d><e/>x</d></a>");
  EXPECT_NE(doc.sole_text_child(1), kInvalidNode);    // <b>t</b>
  NodeId c = 3;
  EXPECT_EQ(doc.sole_text_child(c), kInvalidNode);    // empty <c/>
  NodeId d = 4;
  EXPECT_EQ(doc.label_name(d), "d");
  EXPECT_EQ(doc.sole_text_child(d), kInvalidNode);    // two children
}

TEST(IndexedDocumentTest, DeweyIdsFollowStructure) {
  IndexedDocument doc = MustBuild("<a><b>t</b><c/></a>");
  EXPECT_EQ(DeweyToString(doc.dewey(0)), "ε");
  EXPECT_EQ(DeweyToString(doc.dewey(1)), "0");
  EXPECT_EQ(DeweyToString(doc.dewey(2)), "0.0");
  EXPECT_EQ(DeweyToString(doc.dewey(3)), "1");
}

TEST(IndexedDocumentTest, LowestCommonAncestor) {
  IndexedDocument doc = MustBuild("<a><b><x>1</x><y>2</y></b><c>3</c></a>");
  NodeId x_text = 3, y_text = 5, c_text = 7;
  EXPECT_EQ(doc.text(x_text), "1");
  EXPECT_EQ(doc.text(y_text), "2");
  EXPECT_EQ(doc.text(c_text), "3");
  EXPECT_EQ(doc.LowestCommonAncestor(x_text, y_text), 1);  // <b>
  EXPECT_EQ(doc.LowestCommonAncestor(x_text, c_text), 0);  // <a>
  EXPECT_EQ(doc.LowestCommonAncestor(x_text, x_text), x_text);
  EXPECT_EQ(doc.LowestCommonAncestor(1, x_text), 1);  // ancestor-or-self
}

TEST(IndexedDocumentTest, AttributesExpandToChildren) {
  IndexedDocument doc = MustBuild(R"(<store name="Levis"><city>H</city></store>)");
  // 0:store 1:name 2:"Levis" 3:city 4:"H"
  ASSERT_EQ(doc.num_nodes(), 5u);
  EXPECT_EQ(doc.label_name(1), "name");
  EXPECT_EQ(doc.text(2), "Levis");
  EXPECT_EQ(doc.parent(1), 0);
  EXPECT_EQ(doc.subtree_end(1), 3);
}

TEST(IndexedDocumentTest, AttributeExpansionDisabled) {
  IndexedDocumentOptions options;
  options.expand_attributes = false;
  IndexedDocument doc =
      MustBuild(R"(<store name="Levis"><city>H</city></store>)", options);
  ASSERT_EQ(doc.num_nodes(), 3u);  // store, city, text
}

TEST(IndexedDocumentTest, SubtreeText) {
  IndexedDocument doc = MustBuild("<a><b>one</b><c><d>two</d></c></a>");
  EXPECT_EQ(doc.SubtreeText(0), "one two");
  NodeId c = 3;
  EXPECT_EQ(doc.label_name(c), "c");
  EXPECT_EQ(doc.SubtreeText(c), "two");
}

TEST(IndexedDocumentTest, RejectsEmptyDocument) {
  XmlDocument empty;
  EXPECT_FALSE(IndexedDocument::Build(empty).ok());
}

// Property: pre-order invariants hold on random documents.
class IndexedDocumentProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexedDocumentProperty, StructuralInvariants) {
  Rng rng(GetParam());
  // Random nested xml string.
  std::string xml;
  std::function<void(int)> gen = [&](int depth) {
    std::string tag = "t" + std::to_string(rng.Uniform(4));
    xml += "<" + tag + ">";
    size_t kids = depth > 0 ? rng.Uniform(4) : 0;
    for (size_t i = 0; i < kids; ++i) gen(depth - 1);
    if (kids == 0) xml += "v" + std::to_string(rng.Uniform(10));
    xml += "</" + tag + ">";
  };
  gen(5);
  IndexedDocument doc = MustBuild(xml);

  for (NodeId n = 0; n < static_cast<NodeId>(doc.num_nodes()); ++n) {
    // Parent precedes child; depth increments; subtree nesting.
    if (n != doc.root()) {
      NodeId p = doc.parent(n);
      EXPECT_LT(p, n);
      EXPECT_EQ(doc.depth(n), doc.depth(p) + 1);
      EXPECT_TRUE(doc.IsAncestor(p, n));
      EXPECT_LE(doc.subtree_end(n), doc.subtree_end(p));
    }
    // Children are exactly the nodes whose parent is n.
    for (NodeId c : doc.children(n)) EXPECT_EQ(doc.parent(c), n);
    // Dewey depth equals tree depth.
    EXPECT_EQ(doc.dewey(n).size(), doc.depth(n));
    // Dewey order is document order for the next node.
    if (n + 1 < static_cast<NodeId>(doc.num_nodes())) {
      EXPECT_LT(CompareDewey(doc.dewey(n), doc.dewey(n + 1)), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDocs, IndexedDocumentProperty,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace extract
