#include "search/search_engine.h"

#include <gtest/gtest.h>

#include "datagen/retailer_dataset.h"
#include "search/result_builder.h"
#include "xml/serializer.h"

namespace extract {
namespace {

TEST(QueryTest, ParseTokenizesAndFolds) {
  Query q = Query::Parse("Texas, apparel, Retailer");
  EXPECT_EQ(q.keywords,
            (std::vector<std::string>{"texas", "apparel", "retailer"}));
  EXPECT_EQ(q.raw_keywords,
            (std::vector<std::string>{"Texas", "apparel", "Retailer"}));
  EXPECT_EQ(q.ToString(), "texas apparel retailer");
}

TEST(QueryTest, ParseEmpty) {
  Query q = Query::Parse("  ,;  ");
  EXPECT_TRUE(q.keywords.empty());
}

TEST(XmlDatabaseTest, LoadBuildsAllIndexes) {
  auto db = XmlDatabase::Load(GenerateRetailerXml());
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_GT(db->index().num_nodes(), 1000u);
  EXPECT_NE(db->dtd(), nullptr);
  EXPECT_GT(db->inverted().vocabulary_size(), 10u);
  EXPECT_FALSE(db->classification().entity_labels().empty());
}

TEST(XmlDatabaseTest, LoadRejectsMalformed) {
  EXPECT_FALSE(XmlDatabase::Load("<a><b></a>").ok());
  EXPECT_FALSE(XmlDatabase::Load("").ok());
}

TEST(MasterEntityTest, WalksUpToEntity) {
  auto db = XmlDatabase::Load(R"(<db>
    <store><name>A</name><info><city>H</city></info></store>
    <store><name>B</name><info><city>H</city></info></store>
  </db>)");
  ASSERT_TRUE(db.ok());
  const auto& doc = db->index();
  // Find the first <city> and walk up: master entity is <store>.
  NodeId city = kInvalidNode;
  for (NodeId n = 0; n < static_cast<NodeId>(doc.num_nodes()); ++n) {
    if (doc.is_element(n) && doc.label_name(n) == "city") {
      city = n;
      break;
    }
  }
  ASSERT_NE(city, kInvalidNode);
  NodeId master = MasterEntityOf(doc, db->classification(), city);
  EXPECT_EQ(doc.label_name(master), "store");
}

TEST(MasterEntityTest, FallsBackToRoot) {
  auto db = XmlDatabase::Load("<a><b>x</b></a>");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(MasterEntityOf(db->index(), db->classification(), 1),
            db->index().root());
}

TEST(XSeekEngineTest, PaperQueryReturnsRetailerSubtree) {
  auto db = XmlDatabase::Load(GenerateRetailerXml());
  ASSERT_TRUE(db.ok());
  XSeekEngine engine;
  Query q = Query::Parse("Texas apparel retailer");
  auto results = engine.Search(*db, q);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 1u);  // only Brook Brothers matches all three
  const QueryResult& r = results->front();
  EXPECT_EQ(db->index().label_name(r.root), "retailer");
  // All three keywords have matches inside the result.
  ASSERT_EQ(r.matches.size(), 3u);
  for (const auto& m : r.matches) EXPECT_FALSE(m.empty());
}

TEST(XSeekEngineTest, MultipleMatchingRetailers) {
  RetailerDatasetOptions options;
  options.num_matching_retailers = 3;
  auto db = XmlDatabase::Load(GenerateRetailerXml(options));
  ASSERT_TRUE(db.ok());
  XSeekEngine engine;
  auto results = engine.Search(*db, Query::Parse("Texas apparel retailer"));
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 3u);
  for (const QueryResult& r : *results) {
    EXPECT_EQ(db->index().label_name(r.root), "retailer");
  }
}

TEST(XSeekEngineTest, NoResultsForAbsentKeyword) {
  auto db = XmlDatabase::Load(GenerateRetailerXml());
  ASSERT_TRUE(db.ok());
  XSeekEngine engine;
  auto results = engine.Search(*db, Query::Parse("zebra apparel"));
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST(XSeekEngineTest, EmptyQueryIsInvalid) {
  auto db = XmlDatabase::Load("<a>x</a>");
  ASSERT_TRUE(db.ok());
  XSeekEngine engine;
  EXPECT_EQ(engine.Search(*db, Query{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(XSeekEngineTest, SlcaScopeReturnsSlcaItself) {
  SearchOptions options;
  options.scope = ResultScope::kSlcaSubtree;
  XSeekEngine engine(options);
  auto db = XmlDatabase::Load(R"(<db>
    <store><name>A</name><state>texas</state></store>
    <store><name>B</name><state>ohio</state></store>
  </db>)");
  ASSERT_TRUE(db.ok());
  auto results = engine.Search(*db, Query::Parse("texas"));
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  // SLCA of a single-keyword query is the matching <state> element itself.
  EXPECT_EQ(db->index().label_name(results->front().root), "state");
}

TEST(XSeekEngineTest, MaxResultsCap) {
  SearchOptions options;
  options.max_results = 1;
  XSeekEngine engine(options);
  RetailerDatasetOptions dataset;
  dataset.num_matching_retailers = 3;
  auto db = XmlDatabase::Load(GenerateRetailerXml(dataset));
  ASSERT_TRUE(db.ok());
  auto results = engine.Search(*db, Query::Parse("texas apparel retailer"));
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);
}

TEST(XSeekEngineTest, ResultsComeInDocumentOrderWithoutOverlap) {
  RetailerDatasetOptions dataset;
  dataset.num_matching_retailers = 4;
  auto db = XmlDatabase::Load(GenerateRetailerXml(dataset));
  ASSERT_TRUE(db.ok());
  XSeekEngine engine;
  auto results = engine.Search(*db, Query::Parse("texas apparel"));
  ASSERT_TRUE(results.ok());
  for (size_t i = 1; i < results->size(); ++i) {
    EXPECT_GE((*results)[i].root,
              db->index().subtree_end((*results)[i - 1].root));
  }
}

TEST(ResultBuilderTest, MaterializeSubtreeRoundTrips) {
  auto db = XmlDatabase::Load("<a><b>t</b><c><d>u</d></c></a>");
  ASSERT_TRUE(db.ok());
  auto tree = MaterializeSubtree(db->index(), 0);
  EXPECT_EQ(WriteXml(*tree), "<a><b>t</b><c><d>u</d></c></a>");
  NodeId c = 3;
  EXPECT_EQ(db->index().label_name(c), "c");
  EXPECT_EQ(WriteXml(*MaterializeSubtree(db->index(), c)), "<c><d>u</d></c>");
}

TEST(ResultBuilderTest, MaterializeInducedTree) {
  auto db = XmlDatabase::Load("<a><b>t</b><c><d>u</d></c></a>");
  ASSERT_TRUE(db.ok());
  // Select a, c, d (skip b subtree and d's text).
  NodeId a = 0, c = 3, d = 4;
  auto tree = MaterializeInducedTree(db->index(), a, {a, c, d});
  EXPECT_EQ(WriteXml(*tree), "<a><c><d/></c></a>");
}

}  // namespace
}  // namespace extract
