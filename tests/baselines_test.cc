#include "snippet/baselines.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datagen/stores_dataset.h"
#include "snippet/feature_statistics.h"
#include "snippet/pipeline.h"

namespace extract {
namespace {

struct Ctx {
  XmlDatabase db;
  Query query;
  std::vector<QueryResult> results;
};

Ctx RunQuery(std::string xml, const std::string& query_text) {
  auto db = XmlDatabase::Load(std::move(xml));
  EXPECT_TRUE(db.ok()) << db.status();
  Query query = Query::Parse(query_text);
  XSeekEngine engine;
  auto results = engine.Search(*db, query);
  EXPECT_TRUE(results.ok()) << results.status();
  return Ctx{std::move(*db), std::move(query), std::move(*results)};
}

TEST(BfsTruncationTest, RespectsBoundAndBreadthFirstOrder) {
  auto db = XmlDatabase::Load("<a><b>t</b><c><d>u</d></c></a>");
  ASSERT_TRUE(db.ok());
  // ids: 0:a 1:b 2:"t" 3:c 4:d 5:"u"  — BFS from a: b, c, then t, d, then u.
  Selection s2 = BfsTruncationSelection(db->index(), 0, 2);
  EXPECT_EQ(s2.nodes, (std::vector<NodeId>{0, 1, 3}));
  EXPECT_EQ(s2.edges(), 2u);
  Selection s4 = BfsTruncationSelection(db->index(), 0, 4);
  EXPECT_EQ(s4.nodes, (std::vector<NodeId>{0, 1, 2, 3, 4}));
  Selection s100 = BfsTruncationSelection(db->index(), 0, 100);
  EXPECT_EQ(s100.nodes.size(), db->index().num_nodes());
}

TEST(BfsTruncationTest, ZeroBound) {
  auto db = XmlDatabase::Load("<a><b>t</b></a>");
  ASSERT_TRUE(db.ok());
  Selection s = BfsTruncationSelection(db->index(), 0, 0);
  EXPECT_EQ(s.nodes, (std::vector<NodeId>{0}));
}

TEST(PathToMatchesTest, CoversFirstMatchPerKeyword) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "levis texas");
  ASSERT_EQ(ctx.results.size(), 1u);
  const QueryResult& r = ctx.results[0];
  Selection s =
      PathToMatchesSelection(ctx.db.index(), r.root, r, /*size_bound=*/10);
  EXPECT_LE(s.edges(), 10u);
  // Both keyword paths fit: the name (Levis) and state (texas) elements.
  std::set<NodeId> set(s.nodes.begin(), s.nodes.end());
  for (const auto& matches : r.matches) {
    ASSERT_FALSE(matches.empty());
    EXPECT_TRUE(set.count(matches.front()) > 0);
  }
}

TEST(PathToMatchesTest, SkipsUnaffordablePaths) {
  Ctx ctx = RunQuery(GenerateStoresXml(), "levis jeans");
  ASSERT_EQ(ctx.results.size(), 1u);
  const QueryResult& r = ctx.results[0];
  // Bound 1: "levis" sits at depth 2 under the store root (name + text is
  // not needed — match node is the <name> element, cost 1). "jeans"
  // (category element) costs 3 more and is skipped.
  Selection s = PathToMatchesSelection(ctx.db.index(), r.root, r, 1);
  EXPECT_EQ(s.edges(), 1u);
}

TEST(CoverageOfNodeSetTest, MatchesManualCheck) {
  auto db = XmlDatabase::Load("<a><b>t</b><c><d>u</d></c></a>");
  ASSERT_TRUE(db.ok());
  std::vector<ItemInstances> items;
  items.push_back(ItemInstances{{1}});     // covered
  items.push_back(ItemInstances{{4, 5}});  // not covered
  items.push_back(ItemInstances{{}});      // no instances
  auto covered = CoverageOfNodeSet({0, 1, 2}, items);
  EXPECT_EQ(covered, (std::vector<bool>{true, false, false}));
}

TEST(BaselineComparisonTest, GreedyCoversAtLeastBfsOnIListMetric) {
  // The headline quality claim (E8): at equal budget, the IList-aware
  // greedy selector covers at least as many IList items as blind BFS
  // truncation — on every result and every bound tried.
  Ctx ctx = RunQuery(GenerateStoresXml(), "store texas");
  SnippetGenerator generator(&ctx.db);
  for (const QueryResult& r : ctx.results) {
    for (size_t bound : {2u, 4u, 6u, 8u, 12u, 20u}) {
      SnippetOptions options;
      options.size_bound = bound;
      auto snippet = generator.Generate(ctx.query, r, options);
      ASSERT_TRUE(snippet.ok());
      std::vector<ItemInstances> instances = FindItemInstances(
          ctx.db.index(), ctx.db.classification(), r.root, snippet->ilist);
      Selection bfs = BfsTruncationSelection(ctx.db.index(), r.root, bound);
      auto bfs_covered = CoverageOfNodeSet(bfs.nodes, instances);
      size_t bfs_count = static_cast<size_t>(
          std::count(bfs_covered.begin(), bfs_covered.end(), true));
      EXPECT_GE(snippet->covered_count(), bfs_count)
          << "bound " << bound << " root " << r.root;
    }
  }
}

}  // namespace
}  // namespace extract
