#include "search/ranking.h"

#include <gtest/gtest.h>

#include "datagen/movies_dataset.h"

namespace extract {
namespace {

struct Ctx {
  XmlDatabase db;
  Query query;
  std::vector<QueryResult> results;
};

Ctx RunQuery(std::string xml, const std::string& query_text) {
  auto db = XmlDatabase::Load(std::move(xml));
  EXPECT_TRUE(db.ok()) << db.status();
  Query query = Query::Parse(query_text);
  XSeekEngine engine;
  auto results = engine.Search(*db, query);
  EXPECT_TRUE(results.ok()) << results.status();
  return Ctx{std::move(*db), std::move(query), std::move(*results)};
}

TEST(RankingTest, DeeperSlcaScoresHigher) {
  // Both results match "x"; the deep one is a more specific hit. SLCA
  // scoping keeps the two hits distinct (no entities exist here, so
  // master-entity scoping would merge them into the root).
  auto db = XmlDatabase::Load(R"(<db>
    <shallow>x</shallow>
    <outer><mid><deep>x</deep></mid></outer>
  </db>)");
  ASSERT_TRUE(db.ok());
  SearchOptions search_options;
  search_options.scope = ResultScope::kSlcaSubtree;
  XSeekEngine engine(search_options);
  Query query = Query::Parse("x");
  auto results = engine.Search(*db, query);
  ASSERT_TRUE(results.ok());
  Ctx ctx{std::move(*db), std::move(query), std::move(*results)};
  ASSERT_EQ(ctx.results.size(), 2u);
  RankingOptions options;
  options.frequency_weight = 0.0;
  options.compactness_weight = 0.0;
  auto ranked = RankResults(ctx.db, ctx.results, options);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ctx.db.index().label_name(ranked[0].result.root), "deep");
  EXPECT_GT(ranked[0].score, ranked[1].score);
}

TEST(RankingTest, MoreMatchesScoreHigher) {
  Ctx ctx = RunQuery(R"(<db>
    <doc><w>x</w></doc>
    <doc><w>x</w><w>x</w><w>x</w></doc>
  </db>)",
                     "x doc");
  ASSERT_EQ(ctx.results.size(), 2u);
  RankingOptions options;
  options.specificity_weight = 0.0;
  options.compactness_weight = 0.0;
  auto ranked = RankResults(ctx.db, ctx.results, options);
  // The 3-match doc wins; it is the second in document order.
  EXPECT_GT(ranked[0].result.root, ranked[1].result.root);
}

TEST(RankingTest, SmallerResultScoresHigherOnCompactness) {
  Ctx ctx = RunQuery(R"(<db>
    <doc><w>x</w></doc>
    <doc><w>x</w><pad>a</pad><pad>b</pad><pad>c</pad><pad>d</pad></doc>
  </db>)",
                     "x doc");
  ASSERT_EQ(ctx.results.size(), 2u);
  RankingOptions options;
  options.specificity_weight = 0.0;
  options.frequency_weight = 0.0;
  auto ranked = RankResults(ctx.db, ctx.results, options);
  EXPECT_LT(ranked[0].result.root, ranked[1].result.root);  // small doc first
}

TEST(RankingTest, StableAndDeterministic) {
  MoviesDatasetOptions dataset;
  dataset.num_movies = 20;
  Ctx ctx = RunQuery(GenerateMoviesXml(dataset), "drama movie");
  auto a = RankResults(ctx.db, ctx.results, RankingOptions{});
  auto b = RankResults(ctx.db, ctx.results, RankingOptions{});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].result.root, b[i].result.root);
    EXPECT_EQ(a[i].score, b[i].score);
  }
  // Scores are non-increasing.
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i - 1].score, a[i].score);
  }
}

TEST(RankingTest, TieBreaksTowardDocumentOrder) {
  Ctx ctx = RunQuery(R"(<db>
    <doc><w>x</w></doc>
    <doc><w>x</w></doc>
  </db>)",
                     "x doc");
  ASSERT_EQ(ctx.results.size(), 2u);
  auto ranked = RankResults(ctx.db, ctx.results, RankingOptions{});
  EXPECT_LT(ranked[0].result.root, ranked[1].result.root);
  EXPECT_EQ(ranked[0].score, ranked[1].score);
}

TEST(RankingTest, EmptyInput) {
  auto db = XmlDatabase::Load("<a>x</a>");
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(RankResults(*db, {}, RankingOptions{}).empty());
}

}  // namespace
}  // namespace extract
